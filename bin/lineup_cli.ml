(* The Line-Up command-line tool.

   Subcommands:
     list      — show the catalog of implementations under test
     check     — run Check(X, m) on a named class with an explicit matrix
     random    — RandomCheck: sample k random tests of a given dimension
     auto      — AutoCheck: systematic enumeration with a test budget
     observe   — run phase 1 only and emit the observation file (Fig. 7)
     minimize  — shrink a failing test to a local minimum
     compare   — §5.6 comparison checkers + Line-Up over one shared exploration
     monitor   — decide linearizability of a live NDJSON event stream online *)

module H = Lineup_history
module Value = Lineup_value.Value
module Conc = Lineup_conc
module Checkers = Lineup_checkers
module Explore = Lineup_scheduler.Explore
module Pool = Lineup_parallel.Pool
module Metrics = Lineup_observe.Metrics
module Trace = Lineup_observe.Trace
open Lineup
open Cmdliner

(* --metrics / --trace plumbing. [f] receives the metrics registry option
   to thread into the checker entry points; the summary is written after
   [f] returns and the trace sink is closed even on exceptions. Neither
   flag changes anything printed to stdout. *)
let with_observability ~metrics_file ~trace_file f =
  let metrics = Option.map (fun (_ : string) -> Metrics.create ()) metrics_file in
  Trace.with_trace ~path:trace_file (fun () ->
      let result = f metrics in
      (match metrics_file, metrics with
       | Some path, Some m -> Metrics.write_file m ~path
       | _ -> ());
      result)

(* Exit-code contract (the CI gate): 0 — the check completed and found no
   violation; 1 — a linearizability violation, nondeterministic behavior, or
   a non-reproducing regression was reported; 2 — the check was cancelled
   before completing, so there is no verdict either way (never 0: a
   cancelled run must not pass a gate). Cmdliner's own codes (124 usage
   error, 125 internal error) are untouched, so `lineup auto … && …` gates
   a pipeline exactly on "checked and clean". *)
let exit_violation = 1
let exit_cancelled = 2

let gate_exits =
  Cmd.Exit.info 0 ~doc:"if the check completed without reporting a violation."
  :: Cmd.Exit.info exit_violation
       ~doc:
         "if a linearizability violation or nondeterministic behavior was reported — the code \
          to gate CI pipelines on."
  :: Cmd.Exit.info exit_cancelled
       ~doc:
         "if the check was cancelled before completing: no verdict. Deliberately non-zero so \
          an interrupted check cannot pass a gate."
  :: List.filter (fun i -> Cmd.Exit.info_code i <> 0) Cmd.Exit.defaults

let list_entries () =
  Fmt.pr "%-50s %-6s %-22s %s@." "ADAPTER" "VER" "EXPECTED" "DEFECT";
  List.iter
    (fun (e : Conc.Registry.entry) ->
      let expected =
        match e.expected with
        | Conc.Registry.Pass -> "pass"
        | Conc.Registry.Bug id -> "bug " ^ id
        | Conc.Registry.Intentional_nondeterminism id -> "nondet " ^ id
        | Conc.Registry.Intentional_nonlinearizability id -> "nonlin " ^ id
      in
      Fmt.pr "%-50s %-6s %-22s %s@."
        e.adapter.Adapter.name
        (match e.version with `Beta2 -> "beta2" | `Pre -> "pre")
        expected
        (Option.value ~default:"-" e.defect))
    Conc.Registry.all;
  `Ok 0

let find_adapter name =
  match Conc.Registry.find name with
  | e -> Ok e.Conc.Registry.adapter
  | exception Not_found ->
    Error
      (Fmt.str "unknown adapter %S; run `lineup list` for the catalog" name)

(* A matrix is given as column specs "Inc,Get" "Inc" — one argument per
   thread, operations comma-separated, arguments in parentheses:
   "Enqueue(200),TryDequeue". *)
let parse_invocation s =
  match String.index_opt s '(' with
  | None -> H.Invocation.make (String.trim s)
  | Some i ->
    if s.[String.length s - 1] <> ')' then
      Fmt.failwith "malformed invocation %S (missing closing parenthesis)" s;
    let name = String.trim (String.sub s 0 i) in
    let arg = String.sub s (i + 1) (String.length s - i - 2) in
    H.Invocation.make ~arg:(Value.of_string arg) name

let parse_column s =
  String.split_on_char ',' s |> List.filter (fun x -> String.trim x <> "")
  |> List.map parse_invocation

let config_of ?(por = false) ?(membership = Check.Auto)
    ?(memory = Lineup_runtime.Memory_model.Sc) ~pb ~cap ~classic () =
  Check.config_with ~preemption_bound:(Some pb) ~max_executions:cap ~classic_only:classic
    ~membership ~por ~memory ()

(* --cancel-after N: a deterministic cancellation token that fires after N
   polls — a testing aid exercising the Cancelled verdict and exit code. *)
let cancel_after = function
  | None -> None
  | Some n ->
    let polls = ref 0 in
    Some
      (fun () ->
        incr polls;
        !polls > n)

let check_cmd_run name columns pb cap classic por membership memory jobs frontier_depth
    cancel_polls verbose cache_dir metrics_file trace_file =
  match find_adapter name with
  | Error e -> `Error (false, e)
  | Ok adapter ->
    let test = Test_matrix.make (List.map parse_column columns) in
    let config =
      let c = config_of ~por ~membership ~memory ~pb ~cap ~classic () in
      { c with Check.phase2_domains = jobs; phase2_frontier_depth = frontier_depth }
    in
    let cancelled = cancel_after cancel_polls in
    let r =
      with_observability ~metrics_file ~trace_file (fun metrics ->
          match cache_dir with
          | Some dir -> Obs_cache.check ~config ?metrics ?cancelled ~dir adapter test
          | None -> Check.run ~config ?metrics ?cancelled adapter test)
    in
    if verbose then Fmt.pr "%s@." (Report.check_result_to_string ~adapter ~test r)
    else Fmt.pr "%s@." (Report.summary r);
    if Check.passed r then `Ok 0
    else if Check.cancelled r then `Ok exit_cancelled
    else `Ok exit_violation

let random_cmd_run name rows cols samples seed pb cap por membership memory stop_at_first
    domains metrics_file trace_file =
  match find_adapter name with
  | Error e -> `Error (false, e)
  | Ok adapter ->
    let config = config_of ~por ~membership ~memory ~pb ~cap ~classic:false () in
    let report =
      with_observability ~metrics_file ~trace_file (fun metrics ->
          Random_check.run_parallel ~config ~stop_at_first ?metrics ~domains ~seed
            ~invocations:adapter.Adapter.universe ~rows ~cols ~samples adapter)
    in
    Fmt.pr "%d tests: %d passed, %d failed@." (List.length report.Random_check.outcomes)
      report.Random_check.passed report.Random_check.failed;
    Fmt.pr "%a@." Explore.pp_stats report.Random_check.stats;
    (match report.Random_check.first_failure with
     | Some o ->
       Fmt.pr "@.first failing test:@.%s@."
         (Report.check_result_to_string ~adapter ~test:o.Random_check.test o.Random_check.result)
     | None -> ());
    if report.Random_check.failed = 0 then `Ok 0 else `Ok exit_violation

let auto_cmd_run name max_tests pb cap por membership memory domains metrics_file trace_file =
  match find_adapter name with
  | Error e -> `Error (false, e)
  | Ok adapter -> (
    match
      with_observability ~metrics_file ~trace_file (fun metrics ->
          Auto_check.run
            ~config:(config_of ~por ~membership ~memory ~pb ~cap ~classic:false ())
            ~domains ?metrics ~max_tests adapter)
    with
    | Auto_check.Failed { test; result; tests_run; stats } ->
      Fmt.pr "FAIL after %d tests@.%a@.%s@." tests_run Explore.pp_stats stats
        (Report.check_result_to_string ~adapter ~test result);
      `Ok exit_violation
    | Auto_check.Budget_exhausted { tests_run; stats } ->
      Fmt.pr "no violation in %d tests@.%a@." tests_run Explore.pp_stats stats;
      `Ok 0)

let observe_cmd_run name columns output =
  match find_adapter name with
  | Error e -> `Error (false, e)
  | Ok adapter ->
    let test = Test_matrix.make (List.map parse_column columns) in
    let r = Check.run ~config:{ Check.default_config with phase2 = { Explore.serial_config with max_executions = Some 0 } } adapter test in
    let xml = Observation_file.to_string r.Check.observation in
    (match output with
     | Some path ->
       Observation_file.save ~path r.Check.observation;
       Fmt.pr "wrote %d serial histories to %s@." r.Check.phase1.Check.histories path
     | None -> Fmt.pr "%s@." xml);
    `Ok 0

let minimize_cmd_run name columns pb membership memory cancel_polls =
  match find_adapter name with
  | Error e -> `Error (false, e)
  | Ok adapter -> (
    let test = Test_matrix.make (List.map parse_column columns) in
    let config = config_of ~membership ~memory ~pb ~cap:None ~classic:false () in
    let cancelled = cancel_after cancel_polls in
    match Minimize.reduce ~config ?cancelled adapter test with
    | r when Check.cancelled r.Minimize.check ->
      (* The initial check never finished: no verdict, nothing minimized. *)
      Fmt.pr "cancelled before a verdict (%d checks spent):@.%s@." r.Minimize.checks_spent
        (Report.summary r.Minimize.check);
      `Ok exit_cancelled
    | r ->
      Fmt.pr "minimal failing test (%d checks spent):@.%a@.%s@." r.Minimize.checks_spent
        Test_matrix.pp r.Minimize.test
        (Report.summary r.Minimize.check);
      `Ok 0
    | exception Invalid_argument msg -> `Error (false, msg))

let compare_cmd_run name columns por membership memory jobs frontier_depth tso metrics_file
    trace_file =
  match find_adapter name with
  | Error e -> `Error (false, e)
  | Ok adapter ->
    let test = Test_matrix.make (List.map parse_column columns) in
    (* Single-pass §5.6/§5.7 comparison: one exploration of the concurrent
       schedules, with every checker attached as a pipeline analyzer — each
       schedule is executed exactly once no matter how many checkers
       consume it. Renders print in attachment order, Line-Up last, so -j
       never reorders the output. *)
    let threads = Test_matrix.num_threads test + 1 in
    let analyzers =
      [ Checkers.Race_detector.analyzer ~threads; Checkers.Serializability.analyzer () ]
      @ (if tso then [ Checkers.Tso_monitor.analyzer ~threads ] else [])
    in
    let config =
      {
        Check.default_config with
        Check.phase2 = { Check.default_config.Check.phase2 with Explore.por; memory };
        membership;
        phase2_domains = jobs;
        phase2_frontier_depth = frontier_depth;
      }
    in
    let r =
      with_observability ~metrics_file ~trace_file (fun metrics ->
          Check.run ~config ?metrics ~analyzers adapter test)
    in
    List.iter (fun a -> Fmt.pr "%s" a.Check.a_render) r.Check.analyses;
    Fmt.pr "line-up: %s@." (Report.summary r);
    if Check.passed r then `Ok 0
    else if Check.cancelled r then `Ok exit_cancelled
    else `Ok exit_violation

(* Multi-process sharding: `shard-server` runs phase 1 and the frontier
   warm-up locally, fans partitions out to `shard-worker` processes over a
   socket, checkpoints completed partitions into --dir, and merges in
   frontier order — the report, verdict, exit code and --metrics file are
   byte-identical to `check -j` on the same arguments. *)
let shard_server_cmd_run name columns pb cap classic por membership memory frontier_depth dir
    listen local resume halt_after verbose metrics_file trace_file =
  match find_adapter name with
  | Error e -> `Error (false, e)
  | Ok adapter -> (
    let test = Test_matrix.make (List.map parse_column columns) in
    let config =
      let c = config_of ~por ~membership ~memory ~pb ~cap ~classic () in
      { c with Check.phase2_frontier_depth = frontier_depth }
    in
    match
      with_observability ~metrics_file ~trace_file (fun metrics ->
          Lineup_shard.Server.run ~config ?metrics ?listen ~local ~resume ?halt_after ~dir
            ~adapter ~test ())
    with
    | Lineup_shard.Server.Report r ->
      if verbose then Fmt.pr "%s@." (Report.check_result_to_string ~adapter ~test r)
      else Fmt.pr "%s@." (Report.summary r);
      if Check.passed r then `Ok 0
      else if Check.cancelled r then `Ok exit_cancelled
      else `Ok exit_violation
    | Lineup_shard.Server.Halted _ ->
      (* Checkpoints are durable but there is no verdict: exit like a
         cancelled check so a halted sweep can never pass a gate. *)
      `Ok exit_cancelled
    | Lineup_shard.Server.Failed_run msg -> `Error (false, msg))

let shard_worker_cmd_run connect =
  let lookup name =
    match Conc.Registry.find name with
    | e -> Some e.Conc.Registry.adapter
    | exception Not_found -> None
  in
  `Ok (Lineup_shard.Worker.run ~connect ~lookup ())

(* Repro: run every registered defect's targeted regression test and
   compare against the expected verdict — the §5.1 regression workflow. *)
let repro_targets =
  [
    "A", "ManualResetEvent (Pre: lost signal)", [ "Wait" ], [ "Set" ];
    "A'", "ManualResetEvent (Pre: CAS typo)", [ "Wait"; "IsSet" ], [ "Set"; "Reset" ];
    ( "B",
      "ConcurrentQueue (Pre: timed lock in TryDequeue)",
      [ "Enqueue(200)"; "Enqueue(400)" ],
      [ "TryDequeue"; "TryDequeue" ] );
    "C", "SemaphoreSlim (Pre: unlocked release)", [ "Release" ], [ "Release" ];
    "D", "CountdownEvent (Pre: racy signal)", [ "Signal" ], [ "Signal" ];
    ( "E",
      "ConcurrentStack (Pre: non-atomic TryPopRange)",
      [ "Push(1)"; "Push(2)" ],
      [ "TryPopRange(2)" ] );
    "F", "LazyInit (Pre: early publish)", [ "Value" ], [ "Value" ];
    ( "G",
      "TaskCompletionSource (Pre: racy TrySetResult)",
      [ "TrySetResult(10)" ],
      [ "TrySetResult(20)" ] );
    "H", "ConcurrentBag", [ "Add(10)"; "Add(20)" ], [ "TryTake" ];
    "I+J", "BlockingCollection (segmented)", [ "Add(200)"; "Add(400)" ], [ "Count" ];
    "K", "CancellationTokenSource", [ "Cancel" ], [ "IsCancellationRequested" ];
    "L", "Barrier", [ "SignalAndWait" ], [ "SignalAndWait" ];
    "M", "ReaderWriterLockSlim (Pre: racy EnterRead)", [ "EnterRead" ], [ "EnterRead"; "CurrentReadCount" ];
    "O", "ConcurrentDictionary (Pre: non-atomic Clear)", [ "TryAdd(10)"; "TryAdd(20)"; "Clear" ], [ "Count" ];
  ]

let repro_cmd_run which =
  let selected =
    match which with
    | None -> repro_targets
    | Some id -> List.filter (fun (i, _, _, _) -> String.equal i id) repro_targets
  in
  if selected = [] then `Error (false, "unknown root cause id")
  else begin
    let all_ok = ref true in
    List.iter
      (fun (id, name, col1, col2) ->
        let adapter = (Conc.Registry.find name).Conc.Registry.adapter in
        let test =
          Test_matrix.make [ List.map parse_invocation col1; List.map parse_invocation col2 ]
        in
        let r = Check.run adapter test in
        let ok = not (Check.passed r) in
        if not ok then all_ok := false;
        Fmt.pr "%-5s %-50s %s %s@." id name
          (if ok then "reproduced:" else "NOT REPRODUCED:")
          (Report.summary r))
      selected;
    if !all_ok then `Ok 0 else `Ok exit_violation
  end

(* ---------------- cmdliner wiring ---------------- *)

let name_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CLASS" ~doc:"Adapter name (see $(b,list)).")

let columns_arg =
  Arg.(
    non_empty & pos_right 0 string []
    & info [] ~docv:"COLUMN"
        ~doc:
          "One test column (thread) per argument; operations comma-separated, e.g. \
           'Enqueue(200),TryDequeue'.")

let pb_arg =
  Arg.(value & opt int 2 & info [ "p"; "preemption-bound" ] ~doc:"Preemption bound for phase 2.")

let cap_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-executions" ] ~doc:"Cap on phase-2 executions per test.")

let classic_arg =
  Arg.(
    value & flag
    & info [ "classic" ]
        ~doc:"Check classic linearizability only (Definition 1; skip stuck-history checking).")

let por_arg =
  Arg.(
    value & flag
    & info [ "por" ]
        ~doc:
          "Enable dynamic partial-order reduction in phase 2: commuting interleavings of \
           independent shared accesses are explored once instead of once per order. The \
           verdict, the distinct-history set and the exit code are unchanged — only \
           $(b,explore.phase2.executions) shrinks (operation call/return order is never \
           reordered, so no history is lost). Phase 1 (serial mode) is never reduced: its \
           interleavings $(i,are) the specification. Off by default.")

let membership_conv =
  let parse s =
    match Check.membership_of_string s with
    | Some m -> Ok m
    | None -> Error (`Msg (Printf.sprintf "expected auto, generic or monitor, got %S" s))
  in
  Arg.conv ~docv:"MODE" (parse, fun ppf m -> Fmt.string ppf (Check.membership_name m))

let membership_arg =
  Arg.(
    value
    & opt membership_conv Check.default_config.Check.membership
    & info [ "membership" ] ~docv:"MODE"
        ~doc:
          "Phase-2 membership mode: $(b,auto) (default — use the spec-specialized class \
           monitors and the P-compositional per-key splitter when the adapter declares a \
           specification, falling back to the generic observation witness search whenever \
           they do not apply), $(b,generic) (always the generic search), or $(b,monitor) \
           (force the spec path, including the direct Wing-Gong search, with generic only as \
           a last resort). Every mode consumes the same enumerated histories: the verdict, \
           the distinct-history count and $(b,check.phase2.histories_fingerprint) are \
           identical — only wall-clock time changes.")

let memory_conv =
  let parse s =
    match Lineup_runtime.Memory_model.of_string s with
    | Some m -> Ok m
    | None -> Error (`Msg (Printf.sprintf "expected sc, tso or pso, got %S" s))
  in
  Arg.conv ~docv:"MODEL" (parse, Lineup_runtime.Memory_model.pp)

let memory_arg =
  Arg.(
    value
    & opt memory_conv Lineup_runtime.Memory_model.Sc
    & info [ "memory" ] ~docv:"MODEL"
        ~doc:
          "Memory model for phase 2: $(b,sc) (default — sequential consistency, byte-identical \
           to previous releases), $(b,tso) (total store order: one FIFO store buffer per \
           thread, reads forward from the own buffer, buffer flushes are scheduler choices), \
           or $(b,pso) (partial store order: one buffer per thread and location, so stores to \
           different locations also reorder). Atomic read-modify-writes, lock and condition \
           operations, and $(b,Rt.fence) drain the issuing thread's buffers; every buffer \
           drains before an operation returns, so histories stay complete and the verdict is \
           sound for the chosen model. Phase 1 (the serial specification runs) is always \
           sequentially consistent.")

let verbose_arg = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Full report output.")

let domain_count =
  let parse s =
    match Arg.conv_parser Arg.int s with
    | Ok n when n >= 1 -> Ok n
    | Ok n -> Error (`Msg (Printf.sprintf "expected a domain count >= 1, got %d" n))
    | Error _ as e -> e
  in
  Arg.conv ~docv:"N" (parse, Arg.conv_printer Arg.int)

let jobs_arg =
  Arg.(
    value
    & opt domain_count (Pool.default_domains ())
    & info [ "j"; "jobs"; "domains" ] ~docv:"N"
        ~doc:
          "Fan independent $(b,Check) jobs out over $(docv) OCaml domains. Reports, verdicts \
           and exit codes are identical for every value of $(docv) — parallelism only changes \
           wall-clock time. Defaults to the machine's recommended domain count.")

let check_jobs_arg =
  Arg.(
    value
    & opt (some domain_count) None
    & info [ "j"; "jobs"; "domains" ] ~docv:"N"
        ~doc:
          "Fan phase 2 of this single check out over $(docv) OCaml domains by frontier \
           splitting: a sequential warm-up enumerates the shallow decision prefixes of the \
           schedule tree, and each prefix subtree is explored as an independent partition. \
           The verdict, report and metrics are identical for every value of $(docv) (the \
           partition set and its merge order are fixed by the frontier, not the domain \
           count). When omitted, phase 2 runs the legacy single-domain exploration, whose \
           metrics differ slightly from $(b,-j 1): dedup tables are per partition under \
           $(b,-j).")

let frontier_depth_arg =
  Arg.(
    value
    & opt domain_count 4
    & info [ "frontier-depth" ] ~docv:"DEPTH"
        ~doc:
          "Decision-prefix length of the $(b,-j) warm-up (default 4). Deeper frontiers give \
           more, smaller partitions: better load balance, more warm-up work. Ignored without \
           $(b,-j).")

let cancel_after_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "cancel-after" ] ~docv:"POLLS"
        ~doc:
          "Cancel the check after $(docv) cancellation polls (roughly, explored executions). \
           A testing aid: the run reports CANCELLED and exits with code 2, never 0 — used by \
           CI to pin the incomplete-check exit contract.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write a JSON summary of structured counters (executions, steps, dedup hit rate, \
           cache hits, ...) to $(docv). The summary is deterministic: byte-identical for every \
           $(b,-j) value and across repeated runs. See README.md for the schema.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Append one NDJSON event per line to $(docv) (per-execution outcomes, per-phase \
           timings, pool scheduling). Unlike $(b,--metrics), the trace carries wall-clock \
           timestamps and interleaves in completion order — it is explicitly non-deterministic.")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ]
        ~doc:"Cache phase-1 observation files in this directory (Fig. 7 XML; reused across runs).")

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List the implementations under test")
    Term.(ret (const list_entries $ const ()))

let check_cmd =
  Cmd.v
    (Cmd.info "check" ~exits:gate_exits
       ~doc:"Run the two-phase Check(X, m) on an explicit test matrix")
    Term.(
      ret
        (const check_cmd_run $ name_arg $ columns_arg $ pb_arg $ cap_arg $ classic_arg $ por_arg
         $ membership_arg $ memory_arg $ check_jobs_arg $ frontier_depth_arg $ cancel_after_arg
         $ verbose_arg $ cache_dir_arg $ metrics_arg $ trace_arg))

let random_cmd =
  let rows = Arg.(value & opt int 3 & info [ "rows" ] ~doc:"Operations per thread.") in
  let cols = Arg.(value & opt int 3 & info [ "cols" ] ~doc:"Number of threads.") in
  let samples = Arg.(value & opt int 100 & info [ "n"; "samples" ] ~doc:"Sample size.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let stop = Arg.(value & flag & info [ "stop-at-first" ] ~doc:"Stop at the first failure.") in
  Cmd.v
    (Cmd.info "random" ~exits:gate_exits
       ~doc:"RandomCheck: check a uniform random sample of tests (Fig. 8)")
    Term.(
      ret
        (const random_cmd_run $ name_arg $ rows $ cols $ samples $ seed $ pb_arg $ cap_arg
         $ por_arg $ membership_arg $ memory_arg $ stop $ jobs_arg $ metrics_arg $ trace_arg))

let auto_cmd =
  let max_tests =
    Arg.(value & opt int 1000 & info [ "max-tests" ] ~doc:"Budget of Check invocations.")
  in
  Cmd.v
    (Cmd.info "auto" ~exits:gate_exits
       ~doc:"AutoCheck: systematic test enumeration (Fig. 6)")
    Term.(
      ret
        (const auto_cmd_run $ name_arg $ max_tests $ pb_arg $ cap_arg $ por_arg $ membership_arg
         $ memory_arg $ jobs_arg $ metrics_arg $ trace_arg))

let observe_cmd =
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Observation file path.")
  in
  Cmd.v
    (Cmd.info "observe" ~doc:"Run phase 1 only and emit the observation file (Fig. 7)")
    Term.(ret (const observe_cmd_run $ name_arg $ columns_arg $ output))

let minimize_cmd =
  Cmd.v
    (Cmd.info "minimize" ~exits:gate_exits
       ~doc:"Shrink a failing test matrix to a local minimum")
    Term.(
      ret (const minimize_cmd_run $ name_arg $ columns_arg $ pb_arg $ membership_arg
           $ memory_arg $ cancel_after_arg))

let compare_cmd =
  let tso_arg =
    Arg.(
      value
      & flag
      & info [ "tso" ]
          ~doc:
            "Also attach the §5.7 store-buffering monitor: flag potential \
             sequential-consistency violations under TSO (crossed concurrent store-load \
             windows, the Dekker litmus shape). Informational — patterns never affect the \
             exit code.")
  in
  Cmd.v
    (Cmd.info "compare" ~exits:gate_exits
       ~doc:
         "Run the comparison checkers of §5.6 (race detection, conflict-serializability) plus \
          Line-Up over a $(b,single) exploration: every checker rides the same schedule \
          enumeration as a per-execution analyzer, so each schedule executes exactly once \
          regardless of checker count. Exits like $(b,check): 0 when Line-Up found no \
          violation, 1 on a Line-Up violation (race and serializability warnings are \
          informational — the paper's false alarms on lock-free code), 2 when cancelled.")
    Term.(
      ret
        (const compare_cmd_run $ name_arg $ columns_arg $ por_arg $ membership_arg $ memory_arg
         $ check_jobs_arg $ frontier_depth_arg
         $ tso_arg $ metrics_arg $ trace_arg))

let shard_server_cmd =
  let dir_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:
            "Run directory: the manifest, the phase-1 and frontier checkpoints and one file \
             per completed partition land here (see README.md for the layout). A killed \
             server restarts from it with $(b,--resume).")
  in
  let listen_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:
            "Socket to accept workers on: a Unix-domain path, or $(i,host:port) for TCP. \
             Defaults to $(i,DIR)/sock.")
  in
  let local_arg =
    Arg.(
      value
      & opt int 0
      & info [ "local" ] ~docv:"N"
          ~doc:
            "Convenience mode: spawn $(docv) $(b,shard-worker) child processes of this \
             executable connected to the server's socket — a one-machine sweep needs no \
             second command.")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Resume the sweep recorded in $(b,--dir): phase 1, the frontier and every valid \
             partition checkpoint are loaded instead of recomputed, and only unfinished \
             partitions are dispatched. The directory must have been recorded by the exact \
             same arguments (a configuration fingerprint is verified). The final report and \
             metrics are byte-identical to an uninterrupted run.")
  in
  let halt_after_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "halt-after" ] ~docv:"K"
          ~doc:
            "Stop the server after $(docv) partition checkpoints without merging, exiting \
             with code 2 — a deterministic stand-in for a kill, used by the CI \
             kill-and-resume smoke test.")
  in
  Cmd.v
    (Cmd.info "shard-server" ~exits:gate_exits
       ~doc:
         "Run one check as a multi-process sweep: phase 1 and the frontier warm-up run \
          locally, the frontier partitions fan out to $(b,shard-worker) processes, completed \
          partitions are checkpointed into $(b,--dir), and the results merge in canonical \
          frontier order. The report, verdict, exit code and $(b,--metrics) file are \
          byte-identical to $(b,check -j) on the same arguments, for any worker count and \
          across kill/$(b,--resume) cycles.")
    Term.(
      ret
        (const shard_server_cmd_run $ name_arg $ columns_arg $ pb_arg $ cap_arg $ classic_arg
         $ por_arg $ membership_arg $ memory_arg $ frontier_depth_arg $ dir_arg $ listen_arg
         $ local_arg $ resume_arg $ halt_after_arg $ verbose_arg $ metrics_arg $ trace_arg))

let shard_worker_cmd =
  let connect_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:"Server socket: a Unix-domain path, or $(i,host:port) for TCP.")
  in
  Cmd.v
    (Cmd.info "shard-worker"
       ~doc:
         "Worker process for $(b,shard-server): connects, receives the job context, runs \
          partition subtrees and ships serialized results back until told to shut down. \
          Normally spawned by $(b,--local); run it by hand (or on other machines with a TCP \
          $(b,--listen)) to scale a sweep out.")
    Term.(ret (const shard_worker_cmd_run $ connect_arg))

let repro_cmd =
  let which =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"ID" ~doc:"Root cause id (A, B, ... O); all when omitted.")
  in
  Cmd.v
    (Cmd.info "repro" ~exits:gate_exits
       ~doc:"Reproduce the registered root causes on their minimal regression tests (§5.1)")
    Term.(ret (const repro_cmd_run $ which))

(* ---------------- monitor ---------------- *)

(* Streaming monitor exit contract: 0/1 mirror the check gate; 3 means the
   stream left the monitored fragment (off-vocabulary operation, no
   quiescent point, malformed line) — no verdict either way, and distinct
   from 2 so "cancelled" and "unsupported" stay distinguishable in CI. *)
let exit_unsupported = 3

let monitor_exits =
  Cmd.Exit.info 0 ~doc:"if the stream ended (or was replayed) without a violation."
  :: Cmd.Exit.info exit_violation
       ~doc:"if the stream is not linearizable — trustworthy even under $(b,--on-full shed)."
  :: Cmd.Exit.info exit_unsupported
       ~doc:
         "if the stream left the monitored fragment (unsupported operation, malformed line, \
          no quiescent point within the window bound): no verdict either way."
  :: List.filter (fun i -> Cmd.Exit.info_code i <> 0) Cmd.Exit.defaults

let verdict_name = function
  | Lineup_spec.Monitor.Accept -> "OK"
  | Lineup_spec.Monitor.Reject -> "VIOLATION"
  | Lineup_spec.Monitor.Unsupported reason -> "UNSUPPORTED: " ^ reason

let monitor_cmd_run spec_name file replay follow jobs min_batch max_window queue_cap on_full
    report_every metrics_file trace_file =
  match Lineup_spec.Specs.find spec_name with
  | None ->
    `Error
      ( false,
        Fmt.str "unknown specification %S (expected one of: %s)" spec_name
          (String.concat ", " Lineup_spec.Specs.names) )
  | Some _ when replay && follow ->
    `Error (false, "--follow waits for more writers; --replay needs a finite recording")
  | Some spec -> (
    let opts =
      {
        Lineup_monitor.Driver.domains = jobs;
        min_batch;
        max_window;
        queue_cap;
        on_full;
        report_every;
        follow;
      }
    in
    let run_on ic =
      with_observability ~metrics_file ~trace_file (fun metrics ->
          if replay then begin
            let per_hist, outcome =
              Lineup_monitor.Driver.replay ~spec ~opts ?metrics ic
            in
            let bad =
              List.filter_map
                (fun (h, v) ->
                  match v with Lineup_spec.Monitor.Accept -> None | _ -> Some (h, v))
                per_hist
            in
            Fmt.pr "monitor: replayed %d histories, %d ops — %s@."
              (List.length per_hist) outcome.Lineup_monitor.Driver.ops
              (verdict_name outcome.Lineup_monitor.Driver.verdict);
            List.iteri
              (fun i (h, v) ->
                if i < 5 then
                  Fmt.pr "  history %s: %s@."
                    (match h with Some h -> string_of_int h | None -> "untagged")
                    (verdict_name v))
              bad;
            if List.length bad > 5 then
              Fmt.pr "  ... and %d more non-accepting histories@." (List.length bad - 5);
            outcome
          end
          else begin
            let outcome = Lineup_monitor.Driver.run ~spec ~opts ?metrics ic in
            Fmt.pr "monitor: %d ops, %d windows, %d shards, resident peak %d — %s@."
              outcome.Lineup_monitor.Driver.ops outcome.Lineup_monitor.Driver.windows
              outcome.Lineup_monitor.Driver.shards
              outcome.Lineup_monitor.Driver.resident_peak
              (verdict_name outcome.Lineup_monitor.Driver.verdict);
            if outcome.Lineup_monitor.Driver.sheds > 0 then
              Fmt.pr "monitor: %d ops shed under load — Accept is incomplete@."
                outcome.Lineup_monitor.Driver.sheds;
            outcome
          end)
    in
    match
      if file = "-" then run_on stdin
      else
        let ic = open_in file in
        Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> run_on ic)
    with
    | exception Sys_error e -> `Error (false, e)
    | outcome -> (
      match outcome.Lineup_monitor.Driver.verdict with
      | Lineup_spec.Monitor.Accept -> `Ok 0
      | Lineup_spec.Monitor.Reject -> `Ok exit_violation
      | Lineup_spec.Monitor.Unsupported _ -> `Ok exit_unsupported))

let monitor_cmd =
  let spec_pos =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SPEC"
          ~doc:
            (Fmt.str "Specification to monitor against: one of %s."
               (String.concat ", " Lineup_spec.Specs.names)))
  in
  let file_pos =
    Arg.(
      value
      & pos 1 string "-"
      & info [] ~docv:"FILE"
          ~doc:
            "NDJSON event stream: a file, a FIFO, or $(b,-) for stdin (the default). One \
             call/return event per line in the $(b,--trace) schema; other event kinds are \
             skipped, so a raw $(b,lineup check --trace) file is valid input.")
  in
  let replay_arg =
    Arg.(
      value & flag
      & info [ "replay" ]
          ~doc:
            "Treat the stream as a finite recording of complete histories: group events by \
             their $(b,hist) tag and monitor each group as an independent session (fanned out \
             over $(b,-j) domains). The exit code agrees with the offline checker on the same \
             histories — the CI equivalence gate.")
  in
  let follow_arg =
    Arg.(
      value & flag
      & info [ "follow" ]
          ~doc:
            "Re-arm on end-of-file instead of finalizing: on a FIFO, EOF only means every \
             current writer closed, so the monitor waits for the next writer session and keeps \
             checking across sessions. A followed run ends only on a verdict (exit 1 or 3), \
             never by stream end; incompatible with $(b,--replay).")
  in
  let monitor_jobs_arg =
    Arg.(
      value
      & opt domain_count 1
      & info [ "j"; "jobs"; "domains" ] ~docv:"N"
          ~doc:
            "Shard keyed streams (set, dictionary) per key across $(docv) domains; with \
             $(b,--replay), check $(docv) histories concurrently. Verdicts and exit codes are \
             identical for every value.")
  in
  let min_batch_arg =
    Arg.(
      value
      & opt int 512
      & info [ "min-batch" ] ~docv:"N"
          ~doc:
            "Run a window check at the first quiescent point after $(docv) completed \
             operations, then garbage-collect the decided prefix. Smaller values detect \
             violations sooner; larger values amortize better.")
  in
  let max_window_arg =
    Arg.(
      value
      & opt int 1_048_576
      & info [ "max-window" ] ~docv:"N"
          ~doc:
            "Give up (exit 3) if no quiescent point occurs within $(docv) operations — the \
             bound on retained state for adversarial streams.")
  in
  let queue_cap_arg =
    Arg.(
      value
      & opt int 65536
      & info [ "queue" ] ~docv:"N" ~doc:"Ingest queue capacity, in events.")
  in
  let on_full_arg =
    Arg.(
      value
      & opt
          (enum [ "block", Lineup_monitor.Ingest.Block; "shed", Lineup_monitor.Ingest.Shed ])
          Lineup_monitor.Ingest.Block
      & info [ "on-full" ] ~docv:"POLICY"
          ~doc:
            "Backpressure policy at a full ingest queue: $(b,block) (default) is lossless and \
             stalls the producer; $(b,shed) drops whole operations and degrades the monitor \
             accept-lean — a VIOLATION verdict stays trustworthy, a clean exit no longer \
             guarantees linearizability of the dropped portion.")
  in
  let report_every_arg =
    Arg.(
      value
      & opt int 0
      & info [ "report-every" ] ~docv:"N"
          ~doc:
            "Emit a progress line on stderr (and a $(b,monitor.tick) trace event) every \
             $(docv) events. 0 (default) disables.")
  in
  Cmd.v
    (Cmd.info "monitor" ~exits:monitor_exits
       ~doc:
         "Monitor linearizability of a live NDJSON call/return event stream online \
          (decrease-and-conquer engines for queue/stack, chunked feasible-state checking for \
          the rest), with windowed GC keeping memory bounded over unbounded streams")
    Term.(
      ret
        (const monitor_cmd_run $ spec_pos $ file_pos $ replay_arg $ follow_arg
       $ monitor_jobs_arg $ min_batch_arg $ max_window_arg $ queue_cap_arg $ on_full_arg
       $ report_every_arg $ metrics_arg $ trace_arg))

let main =
  let man =
    [
      `S Manpage.s_exit_status;
      `P
        "$(b,check), $(b,random), $(b,auto), $(b,compare) and $(b,repro) exit with 0 when the \
         check completed and found no violation, and with 1 when a linearizability violation or \
         nondeterministic behavior was reported — so any of them can gate a CI pipeline \
         directly. A check that was cancelled before completing exits with 2: it carries no \
         verdict and must not pass a gate. $(b,monitor) adds 3: the stream left the monitored \
         fragment, so there is no verdict either way. Usage errors use cmdliner's standard \
         codes (124 command-line error, 125 internal error). The $(b,-j) flag never changes \
         results or exit codes, only wall-clock time.";
    ]
  in
  Cmd.group
    (Cmd.info "lineup" ~version:"1.0.0" ~man
       ~doc:"A complete and automatic linearizability checker (PLDI 2010 reproduction)")
    [
      list_cmd; check_cmd; random_cmd; auto_cmd; observe_cmd; minimize_cmd; compare_cmd;
      repro_cmd; shard_server_cmd; shard_worker_cmd; monitor_cmd;
    ]

let () = exit (Cmd.eval' main)
