(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation. See DESIGN.md for the experiment index and EXPERIMENTS.md for
   paper-vs-measured results.

   Usage:
     dune exec bench/main.exe                 -- run everything (CI scale)
     dune exec bench/main.exe -- --table 2    -- one artifact
     dune exec bench/main.exe -- --paper      -- paper-scale parameters
     dune exec bench/main.exe -- --samples 50 --cap 10000 --minimize *)

open Bench_common

type selection = {
  mutable tables : int list;
  mutable figures : int list;
  mutable sections : string list;
  mutable ablations : string list;
  mutable bechamel : bool;
  mutable all : bool;
}

let () =
  let sel =
    { tables = []; figures = []; sections = []; ablations = []; bechamel = false; all = true }
  in
  let opts = ref default_options in
  let select f = fun v -> sel.all <- false; f v in
  let args =
    [
      "--table", Arg.Int (select (fun n -> sel.tables <- n :: sel.tables)), "N  run Table N (1|2)";
      ( "--figure",
        Arg.Int (select (fun n -> sel.figures <- n :: sel.figures)),
        "N  run Figure N (1|7|9)" );
      ( "--section",
        Arg.String (select (fun s -> sel.sections <- s :: sel.sections)),
        "S  run Section S (5.5|5.6|5.7|parallel|por|membership|shard|monitor|memory)" );
      ( "--ablation",
        Arg.String (select (fun s -> sel.ablations <- s :: sel.ablations)),
        "A  run ablation A (pb|sampling|stress|phase1|icb|dedup)" );
      "--bechamel", Arg.Unit (select (fun () -> sel.bechamel <- true)), "  bechamel micro-benchmarks";
      ( "--samples",
        Arg.Int (fun n -> opts := { !opts with samples = n }),
        "N  RandomCheck sample size per class (default 6; paper 100)" );
      "--rows", Arg.Int (fun n -> opts := { !opts with rows = n }), "N  operations per thread (default 3)";
      "--cols", Arg.Int (fun n -> opts := { !opts with cols = n }), "N  threads (default 3)";
      ( "--cap",
        Arg.Int (fun n -> opts := { !opts with cap = n }),
        "N  phase-2 executions cap per test (default 1500)" );
      "--seed", Arg.Int (fun n -> opts := { !opts with seed = n }), "N  PRNG seed (default 42)";
      ( "--minimize",
        Arg.Unit (fun () -> opts := { !opts with minimize = true }),
        "  recompute minimal failing dimensions live" );
      ( "--paper",
        Arg.Unit (fun () -> opts := paper_options),
        "  paper-scale parameters (100 samples, 50k cap — slow)" );
      ( "--metrics",
        Arg.String (fun f -> metrics_out := Some f),
        "FILE  write the aggregated JSON metrics summary to FILE" );
      ( "--json",
        Arg.String (fun f -> json_out := Some f),
        "FILE  write machine-readable per-artifact results to FILE (lineup-bench/2)" );
    ]
  in
  Arg.parse args (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) "lineup benchmarks";
  let opts = !opts in
  let want_table n = sel.all || List.mem n sel.tables in
  let want_figure n = sel.all || List.mem n sel.figures in
  let want_section s = sel.all || List.mem s sel.sections in
  let want_ablation s = sel.all || List.mem s sel.ablations in
  let t0 = Unix.gettimeofday () in
  if want_table 1 then Table1.run ();
  if want_figure 1 then Figures.fig1 opts;
  if want_figure 7 then Figures.fig7 opts;
  if want_figure 9 then Figures.fig9 opts;
  if want_table 2 then Table2.run opts;
  if want_section "5.5" then Sections.s55 opts;
  if want_section "5.6" then Sections.s56 opts;
  if want_section "5.7" then Sections.s57 opts;
  if want_section "parallel" then Parallel_scaling.run opts;
  if want_section "por" then Por_bench.run opts;
  if want_section "membership" then Membership_bench.run opts;
  if want_section "shard" then Shard_bench.run opts;
  if want_section "monitor" then Monitor_bench.run opts;
  if want_section "memory" then Memory_bench.run opts;
  if want_ablation "pb" then Ablations.pb_sweep opts;
  if want_ablation "sampling" then Ablations.sampling opts;
  if want_ablation "stress" then Ablations.systematic_vs_stress opts;
  if want_ablation "phase1" then Ablations.phase1_cost opts;
  if want_ablation "icb" then Ablations.icb opts;
  if want_ablation "dedup" then Ablations.dedup opts;
  if sel.all || sel.bechamel then Bechamel_bench.run ();
  write_metrics ();
  let total = Unix.gettimeofday () -. t0 in
  write_json ~total_wall_s:total;
  Fmt.pr "@.[bench] total wall time: %.1fs@." total
