(* Shared plumbing for the benchmark harness. *)

module H = Lineup_history
module Value = Lineup_value.Value
module Conc = Lineup_conc
module Explore = Lineup_scheduler.Explore
module Metrics = Lineup_observe.Metrics
open Lineup

(* Structured counters for the whole bench run (--metrics FILE). Collection
   is deterministic (see Lineup_observe.Metrics); the registry aggregates
   across every artifact that ran, so a sweep's metrics are the sums of its
   parts. [bench_metrics ()] is what artifact runners thread into the
   checker entry points — [None] unless --metrics was given. *)
let metrics_out : string option ref = ref None
let metrics_registry = Metrics.create ()
let bench_metrics () = if !metrics_out = None then None else Some metrics_registry

let write_metrics () =
  match !metrics_out with
  | None -> ()
  | Some path ->
    Metrics.write_file metrics_registry ~path;
    Fmt.pr "[bench] wrote metrics summary to %s@." path

(* Machine-readable per-artifact results (--json FILE). Each artifact runner
   may record rows; the file is the bench lane's CI artifact
   (BENCH_<sha>.json), so the schema is versioned and the rows are emitted
   in recording order to keep diffs stable. [reduction] is the
   unreduced/reduced execution ratio where the artifact measured one. *)
type bench_row = {
  row_section : string;
  row_class : string;
  row_config : string;  (* e.g. "pb=2" / "unbounded" *)
  row_wall_s : float;
  row_executions : int;
  row_executions_reduced : int option;
  row_reduction : float option;
  row_extras : (string * string) list;
      (* section-specific fields, values pre-rendered as JSON (schema
         lineup-bench/2: e.g. the shard lane's workers/speedup/throughput) *)
}

let json_out : string option ref = ref None
let bench_rows : bench_row list ref = ref []

let add_row ?executions_reduced ?reduction ?(extras = []) ~section ~cls ~config ~wall_s
    ~executions () =
  bench_rows :=
    {
      row_section = section;
      row_class = cls;
      row_config = config;
      row_wall_s = wall_s;
      row_executions = executions;
      row_executions_reduced = executions_reduced;
      row_reduction = reduction;
      row_extras = extras;
    }
    :: !bench_rows

let write_json ~total_wall_s =
  match !json_out with
  | None -> ()
  | Some path ->
    let buf = Buffer.create 4096 in
    let row r =
      Printf.bprintf buf
        "    {\"section\": %S, \"class\": %S, \"config\": %S, \"wall_s\": %.3f, \
         \"executions\": %d"
        r.row_section r.row_class r.row_config r.row_wall_s r.row_executions;
      (match r.row_executions_reduced with
       | Some n -> Printf.bprintf buf ", \"executions_reduced\": %d" n
       | None -> ());
      (match r.row_reduction with
       | Some f -> Printf.bprintf buf ", \"reduction\": %.2f" f
       | None -> ());
      List.iter (fun (k, v) -> Printf.bprintf buf ", %S: %s" k v) r.row_extras;
      Buffer.add_string buf "}"
    in
    Buffer.add_string buf "{\n  \"schema\": \"lineup-bench/2\",\n";
    Printf.bprintf buf "  \"total_wall_s\": %.1f,\n" total_wall_s;
    Buffer.add_string buf "  \"results\": [\n";
    List.iteri
      (fun i r ->
        if i > 0 then Buffer.add_string buf ",\n";
        row r)
      (List.rev !bench_rows);
    Buffer.add_string buf "\n  ]\n}\n";
    let oc = open_out path in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Fmt.pr "[bench] wrote results to %s@." path

type options = {
  samples : int;  (* RandomCheck sample size per class (paper: 100) *)
  rows : int;  (* operations per thread (paper: 3) *)
  cols : int;  (* threads (paper: 3) *)
  cap : int;  (* phase-2 executions cap per test (the paper ran uncapped,
                 spending minutes per test; see EXPERIMENTS.md) *)
  seed : int;
  minimize : bool;  (* recompute minimal failing dimensions live *)
}

let default_options =
  { samples = 6; rows = 3; cols = 3; cap = 1500; seed = 42; minimize = false }

let paper_options =
  { samples = 100; rows = 3; cols = 3; cap = 50_000; seed = 42; minimize = true }

let inv ?arg name = H.Invocation.make ?arg name
let inv_int name n = H.Invocation.make ~arg:(Value.int n) name

let check_config opts =
  Check.config_with ~max_executions:(Some opts.cap) ()

let hr title =
  Fmt.pr "@.============================================================@.";
  Fmt.pr "%s@." title;
  Fmt.pr "============================================================@.@."

(* The targeted failing tests used for minimal-dimension reporting — the
   regression tests of §5.1. *)
let targeted_tests =
  [
    "ManualResetEvent (Pre: lost signal)", [ [ inv "Wait" ]; [ inv "Set" ] ];
    ( "ManualResetEvent (Pre: CAS typo)",
      [ [ inv "Wait"; inv "IsSet" ]; [ inv "Set"; inv "Reset" ] ] );
    ( "ConcurrentQueue (Pre: timed lock in TryDequeue)",
      [ [ inv_int "Enqueue" 200; inv_int "Enqueue" 400 ]; [ inv "TryDequeue"; inv "TryDequeue" ] ]
    );
    "SemaphoreSlim (Pre: unlocked release)", [ [ inv "Release" ]; [ inv "Release" ] ];
    "CountdownEvent (Pre: racy signal)", [ [ inv "Signal" ]; [ inv "Signal" ] ];
    ( "ConcurrentStack (Pre: non-atomic TryPopRange)",
      [ [ inv_int "Push" 1; inv_int "Push" 2 ]; [ inv_int "TryPopRange" 2 ] ] );
    "LazyInit (Pre: early publish)", [ [ inv "Value" ]; [ inv "Value" ] ];
    ( "TaskCompletionSource (Pre: racy TrySetResult)",
      [ [ inv_int "TrySetResult" 10 ]; [ inv_int "TrySetResult" 20 ] ] );
    "ConcurrentBag", [ [ inv_int "Add" 10; inv_int "Add" 20 ]; [ inv "TryTake" ] ];
    ( "BlockingCollection (segmented)",
      [ [ inv_int "Add" 200; inv_int "Add" 400 ]; [ inv "Count" ] ] );
    "CancellationTokenSource", [ [ inv "Cancel" ]; [ inv "IsCancellationRequested" ] ];
    "Barrier", [ [ inv "SignalAndWait" ]; [ inv "SignalAndWait" ] ];
    "Counter1 (unlocked inc)", [ [ inv "Inc"; inv "Get" ]; [ inv "Inc" ] ];
  ]

let targeted_test_for name = List.assoc_opt name targeted_tests
