(* Table 2 of the paper: RandomCheck over every class.

   For each class/version row: a uniform random sample of rows×cols tests
   (paper: 100 tests of 3×3), preemption bound 2, and for each row we report
   — matching the paper's columns —
   phase-1 histories (avg/max), phase-1 time (avg/max), phase-2 pass/fail
   counts, average time of failing and passing testcases, the preemption
   bound, the root causes found, and the minimal failing dimensions. *)

open Bench_common
module Conc = Lineup_conc
module Explore = Lineup_scheduler.Explore
open Lineup

type row = {
  name : string;
  expected : Conc.Registry.expected;
  passed : int;
  failed : int;
  p1_hist_avg : float;
  p1_hist_max : int;
  p1_time_avg : float;
  p1_time_max : float;
  fail_time_avg : float option;
  pass_time_avg : float option;
  capped : int;  (* tests whose phase 2 hit the execution cap *)
  min_dims : string;
}

let average = function [] -> 0.0 | l -> List.fold_left ( +. ) 0.0 l /. float (List.length l)
let avg_opt = function [] -> None | l -> Some (average l)

let run_row opts (e : Conc.Registry.entry) =
  let rng = Random.State.make [| opts.seed |] in
  let report =
    Random_check.run ~config:(check_config opts) ?metrics:(bench_metrics ()) ~rng
      ~invocations:e.adapter.Adapter.universe ~rows:opts.rows ~cols:opts.cols
      ~samples:opts.samples e.adapter
  in
  let outcomes = report.Random_check.outcomes in
  let p1_hists = List.map (fun (o : Random_check.test_outcome) -> o.result.Check.phase1.Check.histories) outcomes in
  let p1_times = List.map (fun (o : Random_check.test_outcome) -> o.result.Check.phase1.Check.time) outcomes in
  let total_time (o : Random_check.test_outcome) =
    o.result.Check.phase1.Check.time
    +. match o.result.Check.phase2 with Some p -> p.Check.time | None -> 0.0
  in
  let failing, passing = List.partition (fun (o : Random_check.test_outcome) -> not (Check.passed o.result)) outcomes in
  let capped =
    List.length
      (List.filter
         (fun (o : Random_check.test_outcome) ->
           match o.result.Check.phase2 with
           | Some p -> not p.Check.stats.Explore.complete
           | None -> false)
         passing)
  in
  let min_dims =
    if not opts.minimize then
      match e.min_dims with Some (r, c) -> Fmt.str "%dx%d" r c | None -> "-"
    else begin
      (* recompute live from the recorded targeted failing test *)
      match targeted_test_for e.adapter.Adapter.name with
      | None -> "-"
      | Some cols -> (
        let test = Test_matrix.make cols in
        match Minimize.reduce ~config:(check_config opts) e.adapter test with
        | r ->
          let rows, cols = Test_matrix.dims r.Minimize.test in
          Fmt.str "%dx%d" rows cols
        | exception Invalid_argument _ -> "-")
    end
  in
  {
    name = e.adapter.Adapter.name;
    expected = e.expected;
    passed = report.Random_check.passed;
    failed = report.Random_check.failed;
    p1_hist_avg = average (List.map float p1_hists);
    p1_hist_max = List.fold_left max 0 p1_hists;
    p1_time_avg = average p1_times;
    p1_time_max = List.fold_left Float.max 0.0 p1_times;
    fail_time_avg = avg_opt (List.map total_time failing);
    pass_time_avg = avg_opt (List.map total_time passing);
    capped;
    min_dims;
  }

let expected_tag = function
  | Conc.Registry.Pass -> "-"
  | Conc.Registry.Bug id -> id
  | Conc.Registry.Intentional_nondeterminism id -> id ^ " (nondet)"
  | Conc.Registry.Intentional_nonlinearizability id -> id ^ " (nonlin)"

let time_opt_str = function None -> "-" | Some t -> Fmt.str "%.2fs" t

let run opts =
  hr
    (Fmt.str
       "Table 2: RandomCheck, %d random %dx%d tests per class (PB=2, phase-2 cap %d executions)"
       opts.samples opts.rows opts.cols opts.cap);
  Fmt.pr "%-50s %5s %5s | %8s %6s | %8s %8s | %8s %8s | %6s %8s %s@." "Class" "pass" "FAIL"
    "p1 avg" "p1 max" "p1 t avg" "p1 t max" "t fail" "t pass" "capped" "min dim" "root cause";
  Fmt.pr "%s@." (String.make 150 '-');
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (e : Conc.Registry.entry) ->
      let row = run_row opts e in
      Fmt.pr "%-50s %5d %5d | %8.1f %6d | %7.3fs %7.3fs | %8s %8s | %6d %8s %s@." row.name
        row.passed row.failed row.p1_hist_avg row.p1_hist_max row.p1_time_avg row.p1_time_max
        (time_opt_str row.fail_time_avg) (time_opt_str row.pass_time_avg) row.capped
        row.min_dims (expected_tag row.expected))
    Conc.Registry.table2_rows;
  Fmt.pr "@.total wall time: %.1fs@." (Unix.gettimeofday () -. t0);
  Fmt.pr
    "Notes: 'capped' counts passing tests whose phase 2 hit the execution cap (the paper runs \
     phase 2 to exhaustion, spending minutes per test); failing tests stop at the first \
     violation, hence 't fail' << 't pass' — the paper's observation that testcases fail much \
     quicker than they pass.@."
