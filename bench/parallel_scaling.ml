(* Parallel scaling of the domain fan-out (-j).

   The paper's evaluation spent ~11 CPU-days because every Check(X, m) is an
   independent from-scratch re-execution; §4.3 notes the workload is
   embarrassingly parallel. This section runs the same deterministic
   RandomCheck workload at j ∈ {1, 2, 4, 8} and reports wall-clock speedup
   and parallel efficiency, then verifies the headline determinism claim:
   the j = 1 and j = 4 reports render byte-identically. *)

open Bench_common
module Conc = Lineup_conc
module Pool = Lineup_parallel.Pool
module Metrics = Lineup_observe.Metrics
module Monotonic = Lineup_observe.Monotonic
open Lineup

(* A stable rendering of a whole RandomCheck report: per-sample verdicts
   plus the full rendering of the first failure, if any. Wall-clock-free, so
   identical runs render identically. *)
let render_report (adapter : Adapter.t) (r : Random_check.report) =
  let verdicts =
    List.map
      (fun (o : Random_check.test_outcome) -> Report.summary o.result)
      r.outcomes
  in
  let first =
    match r.first_failure with
    | None -> "no failure"
    | Some o -> Report.check_result_to_string ~adapter ~test:o.test o.result
  in
  Fmt.str "%d/%d passed@.%a@.%s@." r.passed (r.passed + r.failed)
    Fmt.(list ~sep:cut string)
    verdicts first

let run opts =
  hr "Parallel scaling: domain fan-out of Check jobs (-j)";
  let adapter = Conc.Concurrent_queue.correct in
  let samples = max 8 opts.samples in
  Fmt.pr
    "workload: RandomCheck %s, %d samples of %dx%d, phase-2 cap %d, seed %d@.\
     host: %d recommended domain(s)@.@."
    adapter.Adapter.name samples opts.rows opts.cols opts.cap opts.seed
    (Pool.default_domains ());
  let config = check_config opts in
  let sample j =
    let t0 = Monotonic.now () in
    let report =
      Random_check.run_parallel ~config ?metrics:(bench_metrics ()) ~domains:j ~seed:opts.seed
        ~invocations:adapter.Adapter.universe ~rows:opts.rows ~cols:opts.cols ~samples adapter
    in
    report, Monotonic.elapsed_since t0
  in
  Fmt.pr "%4s %10s %10s %12s %s@." "j" "wall (s)" "speedup" "efficiency" "verdicts";
  Fmt.pr "%s@." (String.make 60 '-');
  let base = ref None in
  let reports =
    List.map
      (fun j ->
        let report, dt = sample j in
        let b = match !base with None -> base := Some dt; dt | Some b -> b in
        Fmt.pr "%4d %10.2f %9.2fx %11.0f%% %d/%d passed@." j dt (b /. dt)
          (b /. dt /. float_of_int j *. 100.)
          report.Random_check.passed
          (report.Random_check.passed + report.Random_check.failed);
        j, report)
      [ 1; 2; 4; 8 ]
  in
  let render j = render_report adapter (List.assoc j reports) in
  Fmt.pr "@.deterministic across -j: j=1 and j=4 reports byte-identical: %b@."
    (String.equal (render 1) (render 4));
  Fmt.pr
    "(speedup is bounded by the physical core count; on a 1-core container every j measures \
     ~1.0x plus domain overhead)@.";

  (* ---- intra-check scaling: one Check, phase 2 partitioned ---- *)
  hr "Parallel scaling: intra-check frontier splitting (check -j)";
  let test =
    Test_matrix.make
      [
        [ inv_int "Enqueue" 200; inv_int "Enqueue" 400; inv "TryDequeue" ];
        [ inv "TryDequeue"; inv_int "Enqueue" 600 ];
        [ inv "TryDequeue" ];
      ]
  in
  Fmt.pr
    "workload: one Check of %s on a 3-thread matrix, frontier depth %d@.\
     (the j=1..8 runs explore the identical partition set; speedup is how much@.\
     \ wall-clock the fan-out recovers, bounded by the host's %d domain(s))@.@."
    adapter.Adapter.name Check.default_config.Check.phase2_frontier_depth
    (Pool.default_domains ());
  let check_sample j =
    let config =
      { (check_config opts) with Check.phase2_domains = Some j }
    in
    let m = Metrics.create () in
    let t0 = Monotonic.now () in
    let r = Check.run ~config ~metrics:m adapter test in
    let dt = Monotonic.elapsed_since t0 in
    Option.iter (fun into -> Metrics.merge_into ~into m) (bench_metrics ());
    r, m, dt
  in
  Fmt.pr "%4s %10s %10s %12s %s@." "j" "wall (s)" "speedup" "efficiency" "phase 2";
  Fmt.pr "%s@." (String.make 72 '-');
  let base = ref None in
  let runs =
    List.map
      (fun j ->
        let r, m, dt = check_sample j in
        let b = match !base with None -> base := Some dt; dt | Some b -> b in
        let p2 =
          match r.Check.phase2 with
          | Some p ->
            Fmt.str "%d executions over %d partitions" p.Check.stats.Explore.executions
              (Metrics.get m "explore.phase2.partitions")
          | None -> "not run"
        in
        Fmt.pr "%4d %10.2f %9.2fx %11.0f%% %s@." j dt (b /. dt)
          (b /. dt /. float_of_int j *. 100.) p2;
        j, (r, m))
      [ 1; 2; 4; 8 ]
  in
  let stable j =
    let r, m = List.assoc j runs in
    Report.check_result_to_string ~adapter ~test r ^ "\n" ^ Metrics.to_json m
  in
  Fmt.pr "@.deterministic across check -j: j=1 and j=4 report+metrics byte-identical: %b@."
    (String.equal (stable 1) (stable 4))
