(* Parallel scaling of the domain fan-out (-j).

   The paper's evaluation spent ~11 CPU-days because every Check(X, m) is an
   independent from-scratch re-execution; §4.3 notes the workload is
   embarrassingly parallel. This section runs the same deterministic
   RandomCheck workload at j ∈ {1, 2, 4, 8} and reports wall-clock speedup
   and parallel efficiency, then verifies the headline determinism claim:
   the j = 1 and j = 4 reports render byte-identically. *)

open Bench_common
module Conc = Lineup_conc
module Pool = Lineup_parallel.Pool
open Lineup

(* A stable rendering of a whole RandomCheck report: per-sample verdicts
   plus the full rendering of the first failure, if any. Wall-clock-free, so
   identical runs render identically. *)
let render_report (adapter : Adapter.t) (r : Random_check.report) =
  let verdicts =
    List.map
      (fun (o : Random_check.test_outcome) -> Report.summary o.result)
      r.outcomes
  in
  let first =
    match r.first_failure with
    | None -> "no failure"
    | Some o -> Report.check_result_to_string ~adapter ~test:o.test o.result
  in
  Fmt.str "%d/%d passed@.%a@.%s@." r.passed (r.passed + r.failed)
    Fmt.(list ~sep:cut string)
    verdicts first

let run opts =
  hr "Parallel scaling: domain fan-out of Check jobs (-j)";
  let adapter = Conc.Concurrent_queue.correct in
  let samples = max 8 opts.samples in
  Fmt.pr
    "workload: RandomCheck %s, %d samples of %dx%d, phase-2 cap %d, seed %d@.\
     host: %d recommended domain(s)@.@."
    adapter.Adapter.name samples opts.rows opts.cols opts.cap opts.seed
    (Pool.default_domains ());
  let config = check_config opts in
  let sample j =
    let t0 = Unix.gettimeofday () in
    let report =
      Random_check.run_parallel ~config ?metrics:(bench_metrics ()) ~domains:j ~seed:opts.seed
        ~invocations:adapter.Adapter.universe ~rows:opts.rows ~cols:opts.cols ~samples adapter
    in
    report, Unix.gettimeofday () -. t0
  in
  Fmt.pr "%4s %10s %10s %12s %s@." "j" "wall (s)" "speedup" "efficiency" "verdicts";
  Fmt.pr "%s@." (String.make 60 '-');
  let base = ref None in
  let reports =
    List.map
      (fun j ->
        let report, dt = sample j in
        let b = match !base with None -> base := Some dt; dt | Some b -> b in
        Fmt.pr "%4d %10.2f %9.2fx %11.0f%% %d/%d passed@." j dt (b /. dt)
          (b /. dt /. float_of_int j *. 100.)
          report.Random_check.passed
          (report.Random_check.passed + report.Random_check.failed);
        j, report)
      [ 1; 2; 4; 8 ]
  in
  let render j = render_report adapter (List.assoc j reports) in
  Fmt.pr "@.deterministic across -j: j=1 and j=4 reports byte-identical: %b@."
    (String.equal (render 1) (render 4));
  Fmt.pr
    "(speedup is bounded by the physical core count; on a 1-core container every j measures \
     ~1.0x plus domain overhead)@."
