(* Ablations for the design choices the paper discusses in §4.3 and §5.4:
   the preemption bound, random sampling vs systematic search, and the cost
   of phase 1 as the matrix grows. *)

open Bench_common
module Conc = Lineup_conc
module Explore = Lineup_scheduler.Explore
open Lineup

(* §4.3: "we found it necessary to use the preemption bounding heuristic".
   Sweep PB = 0..3 over the seeded defects with their targeted tests:
   executions explored and whether the bug is found. *)
let pb_sweep opts =
  hr "Ablation: preemption-bound sweep (§4.3)";
  Fmt.pr "%-50s |" "Defect";
  List.iter (fun pb -> Fmt.pr " %16s |" (Fmt.str "PB=%d" pb)) [ 0; 1; 2; 3 ];
  Fmt.pr "@.%s@." (String.make 130 '-');
  (* The point of the sweep is exhaustion *at each bound*: the CI-scale
     phase-2 cap would turn slow-to-find defects (the CAS typo needs ~2800
     executions at PB=2 since return markers became scheduling points) into
     spurious misses, so the sweep keeps a floor of its own. *)
  let cap = max opts.cap 20_000 in
  List.iter
    (fun (name, cols) ->
      let e = Conc.Registry.find name in
      Fmt.pr "%-50s |" name;
      List.iter
        (fun pb ->
          let config =
            Check.config_with ~preemption_bound:(Some pb) ~max_executions:(Some cap) ()
          in
          let r = Check.run ~config e.adapter (Test_matrix.make cols) in
          let execs =
            match r.Check.phase2 with
            | Some p -> p.Check.stats.Explore.executions
            | None -> 0
          in
          let verdict = if Check.passed r then "miss" else "FOUND" in
          Fmt.pr " %5s in %6d e |" verdict execs)
        [ 0; 1; 2; 3 ];
      Fmt.pr "@.")
    targeted_tests;
  Fmt.pr
    "@.Shape to expect: every seeded defect is found at PB=2 (the paper's default); several \
     need at least one preemption, and exploration cost grows with the bound.@."

(* §4.3: random sampling efficiency — the fraction of random tests that
   expose each defect, by dimension. *)
let sampling opts =
  hr "Ablation: random-sampling efficiency (§4.3)";
  let dims = [ 2, 2; 3, 2; 3, 3 ] in
  Fmt.pr "%-50s |" "Defect";
  List.iter (fun (r, c) -> Fmt.pr " %8s |" (Fmt.str "%dx%d" r c)) dims;
  Fmt.pr "  (failing fraction of %d random tests)@." opts.samples;
  Fmt.pr "%s@." (String.make 100 '-');
  List.iter
    (fun (id, (e : Conc.Registry.entry)) ->
      ignore id;
      Fmt.pr "%-50s |" e.adapter.Adapter.name;
      List.iter
        (fun (rows, cols) ->
          let rng = Random.State.make [| opts.seed |] in
          let report =
            Random_check.run ~config:(check_config opts) ~rng
              ~invocations:e.adapter.Adapter.universe ~rows ~cols ~samples:opts.samples
              e.adapter
          in
          Fmt.pr " %4d/%-3d |" report.Random_check.failed
            (List.length report.Random_check.outcomes))
        dims;
      Fmt.pr "@.")
    Conc.Registry.failing_entries

(* Systematic DFS vs random-walk stress scheduling: executions until the
   first violating history of the Fig. 1 test is produced. *)
let systematic_vs_stress opts =
  hr "Ablation: systematic exploration vs random-walk stress testing";
  let e = Conc.Registry.find "ConcurrentQueue (Pre: timed lock in TryDequeue)" in
  let test =
    Test_matrix.make
      [ [ inv_int "Enqueue" 200; inv_int "Enqueue" 400 ]; [ inv "TryDequeue"; inv "TryDequeue" ] ]
  in
  (* Build the observation set once (phase 1). *)
  let r0 = Check.run ~config:(check_config opts) e.adapter test in
  let obs = r0.Check.observation in
  let count_until_violation run_phase =
    let execs = ref 0 in
    let found = ref false in
    let on_history (h : Harness.run_result) =
      incr execs;
      let bad =
        if Lineup_history.History.is_stuck h.history then
          Result.is_error (Observation.linearizable_stuck obs h.history)
        else Option.is_none (Observation.find_witness_full obs h.history)
      in
      if bad then begin
        found := true;
        `Stop
      end
      else `Continue
    in
    ignore (run_phase on_history);
    !found, !execs
  in
  let dfs_found, dfs_execs =
    count_until_violation (fun on_history ->
        Harness.run_phase
          { Explore.default_config with Explore.max_executions = Some opts.cap }
          ~adapter:e.adapter ~test ~on_history)
  in
  Fmt.pr "systematic DFS (PB=2):        %s after %d executions@."
    (if dfs_found then "violation" else "nothing")
    dfs_execs;
  List.iter
    (fun seed ->
      let rw_found, rw_execs =
        count_until_violation (fun on_history ->
            Harness.run_phase_random Explore.default_config
              ~rng:(Random.State.make [| seed |])
              ~executions:opts.cap ~adapter:e.adapter ~test ~on_history)
      in
      Fmt.pr "random walk (seed %3d):       %s after %d executions@." seed
        (if rw_found then "violation" else "nothing")
        rw_execs)
    [ 1; 2; 3 ];
  Fmt.pr
    "@.Both find this bug; the systematic explorer does so deterministically and can prove \
     exhaustion, which stress testing cannot (\"simple runtime monitoring is not \
     sufficient\", §4).@."

(* §5.4: phase-1 cost by matrix dimension. The combinatorial ceiling for
   p×q is (pq)!/(p!)^q: 3×3 gives 1680, the figure the paper quotes. *)
let phase1_cost _opts =
  hr "Ablation: phase-1 serial enumeration cost by dimension (§5.4)";
  let adapter = Conc.Concurrent_queue.correct in
  Fmt.pr "%6s %12s %12s %10s@." "dims" "histories" "ceiling" "time";
  Fmt.pr "%s@." (String.make 50 '-');
  let fact n = List.fold_left ( * ) 1 (List.init n (fun i -> i + 1)) in
  let rec ipow b n = if n = 0 then 1 else b * ipow b (n - 1) in
  let ceiling rows cols = fact (rows * cols) / ipow (fact rows) cols in
  List.iter
    (fun (rows, cols) ->
      let u = Array.of_list adapter.Adapter.universe in
      let columns =
        List.init cols (fun c -> List.init rows (fun r -> u.(((c * rows) + r) mod Array.length u)))
      in
      let test = Test_matrix.make columns in
      let t0 = Unix.gettimeofday () in
      let r =
        Check.run
          ~config:{ Check.default_config with Check.phase2 = { Explore.serial_config with Explore.max_executions = Some 0 } }
          adapter test
      in
      let dt = Unix.gettimeofday () -. t0 in
      Fmt.pr "%6s %12d %12d %9.3fs@."
        (Fmt.str "%dx%d" rows cols)
        r.Check.phase1.Check.histories (ceiling rows cols) dt)
    [ 1, 1; 2, 1; 1, 2; 2, 2; 3, 2; 2, 3; 3, 3 ];
  Fmt.pr
    "@.The 3x3 ceiling of 1680 serial interleavings matches §5.5's \"combinatorial number of \
     full histories for 3x3 matrices, which is 1680\"; the enumeration is cheap — the key \
     fact the Line-Up algorithm exploits (§5.4).@."


(* Iterative context bounding: the bound at which each defect is first
   found, searching PB=0, then 1, ... as CHESS does. *)
let icb opts =
  hr "Ablation: iterative context bounding (found-at bound)";
  Fmt.pr "%-50s %10s %12s@." "Defect" "bound" "executions";
  Fmt.pr "%s@." (String.make 80 '-');
  List.iter
    (fun (name, cols) ->
      let e = Conc.Registry.find name in
      let test = Test_matrix.make cols in
      (* phase 1 once *)
      match Check.synthesize e.adapter test with
      | Error _ -> Fmt.pr "%-50s %10s %12s@." name "p1" "-"
      | Ok (obs, _) ->
        let execs = ref 0 in
        let found_at = ref None in
        (* Same exhaustion floor as the PB sweep: the point is the bound at
           which the defect surfaces, not whether it beats the CI cap. *)
        let cap = max opts.cap 20_000 in
        let rec try_bound b =
          if b > 3 || Option.is_some !found_at then ()
          else begin
            let config =
              {
                Explore.default_config with
                Explore.preemption_bound = Some b;
                max_executions = Some cap;
              }
            in
            let _ =
              Harness.run_phase config ~adapter:e.adapter ~test ~on_history:(fun h ->
                  incr execs;
                  let bad =
                    if Lineup_history.History.is_stuck h.history then
                      Result.is_error (Observation.linearizable_stuck obs h.history)
                    else Option.is_none (Observation.find_witness_full obs h.history)
                  in
                  if bad then begin
                    found_at := Some b;
                    `Stop
                  end
                  else `Continue)
            in
            try_bound (b + 1)
          end
        in
        try_bound 0;
        (match !found_at with
         | Some b -> Fmt.pr "%-50s %10d %12d@." name b !execs
         | None -> Fmt.pr "%-50s %10s %12d@." name "miss" !execs))
    targeted_tests;
  Fmt.pr
    "@.Most defects surface at bound 1 — the small-bound hypothesis behind CHESS's iterative \
     search order.@."

(* The history-dedup optimization in phase 2. *)
let dedup opts =
  hr "Ablation: phase-2 history deduplication";
  let e = Conc.Registry.find "ConcurrentBag" in
  let rng = Random.State.make [| opts.seed |] in
  let test =
    Test_matrix.random ~rng ~invocations:e.adapter.Adapter.universe ~rows:3 ~cols:3 ()
  in
  (* a deeper phase 2 shows the effect: duplicates dominate as the explored
     space grows *)
  let cap = max opts.cap 8_000 in
  List.iter
    (fun dedup_histories ->
      let config =
        { (Check.config_with ~max_executions:(Some cap) ()) with Check.dedup_histories }
      in
      let t0 = Unix.gettimeofday () in
      let r = Check.run ~config e.adapter test in
      let dt = Unix.gettimeofday () -. t0 in
      Fmt.pr "dedup=%-5b  %-40s %.2fs@." dedup_histories (Report.summary r) dt)
    [ true; false ];
  Fmt.pr
    "@.Schedules frequently replay identical histories; checking each distinct history once \
     is sound (the verdict is a function of the history) and much cheaper.@.";
  (* Metrics-derived dedup hit rate per class: phase-2 histories that were
     skipped because an identical one had already been checked, as a share
     of all histories seen. The counters come straight from the
     observability layer, so the same numbers appear in any --metrics
     summary. *)
  Fmt.pr "@.dedup hit rate by class (one random %dx%d test each, cap %d):@.@." 3 3 cap;
  Fmt.pr "%-50s %9s %9s %9s@." "Class" "distinct" "dup hits" "hit rate";
  Fmt.pr "%s@." (String.make 80 '-');
  List.iter
    (fun name ->
      let e = Conc.Registry.find name in
      let rng = Random.State.make [| opts.seed |] in
      let test =
        Test_matrix.random ~rng ~invocations:e.adapter.Adapter.universe ~rows:3 ~cols:3 ()
      in
      let m = Metrics.create () in
      let config = Check.config_with ~max_executions:(Some cap) () in
      ignore (Check.run ~config ~metrics:m e.adapter test);
      (match bench_metrics () with
       | Some agg -> Metrics.merge_into ~into:agg m
       | None -> ());
      let distinct = Metrics.get m "check.phase2.histories_distinct" in
      let hits = Metrics.get m "check.phase2.dedup_hits" in
      let total = distinct + hits in
      Fmt.pr "%-50s %9d %9d %8.1f%%@." name distinct hits
        (if total = 0 then 0.0 else 100.0 *. float hits /. float total))
    [ "Counter"; "ConcurrentQueue"; "ConcurrentStack"; "ConcurrentBag"; "SemaphoreSlim" ]
