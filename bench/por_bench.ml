(* The --por artifact: dynamic partial-order reduction factors per
   collection class, with the equivalence the reduction must preserve
   asserted inline (same verdict, same distinct-history count). Two
   configurations per class: the default preemption bound (where the
   cost-aware sleep sets apply) and unbounded (where the full lazy DPOR
   applies and the reductions are much larger). Rows land in the --json
   results file; the CI bench lane uploads it as BENCH_<sha>.json. *)

open Bench_common
module Conc = Lineup_conc
module Explore = Lineup_scheduler.Explore
open Lineup

(* Fixed 2x2 tests: deterministic, small enough to explore unbounded, big
   enough that the schedule tree is non-trivial. *)
let cases =
  [
    "Counter", [ [ inv "Inc"; inv "Get" ]; [ inv "Inc"; inv "Get" ] ];
    ( "ConcurrentQueue",
      [ [ inv_int "Enqueue" 1; inv "TryDequeue" ]; [ inv_int "Enqueue" 2; inv "TryDequeue" ] ] );
    "ConcurrentStack", [ [ inv_int "Push" 1; inv "TryPop" ]; [ inv_int "Push" 2; inv "TryPop" ] ];
    "ConcurrentBag", [ [ inv_int "Add" 1; inv "TryTake" ]; [ inv_int "Add" 2; inv "TryTake" ] ];
    ( "MichaelScottQueue",
      [ [ inv_int "Enqueue" 1; inv "TryDequeue" ]; [ inv_int "Enqueue" 2; inv "TryDequeue" ] ] );
    ( "SegmentQueue",
      [ [ inv_int "Enqueue" 1; inv "TryDequeue" ]; [ inv_int "Enqueue" 2; inv "TryDequeue" ] ] );
  ]

let verdict_label (r : Check.result) =
  match r.Check.verdict with
  | Check.Pass -> "pass"
  | Check.Fail _ -> "fail"
  | Check.Cancelled -> "cancelled"

let run opts =
  hr "Partial-order reduction: phase-2 executions with and without --por";
  Fmt.pr "%-20s %-10s %10s %10s %8s %6s %6s@." "Class" "bound" "exec" "exec(por)" "factor"
    "hist" "equal";
  Fmt.pr "%s@." (String.make 80 '-');
  let cap = Some (max opts.cap 500_000) in
  List.iter
    (fun (name, columns) ->
      let entry = Conc.Registry.find name in
      let test = Test_matrix.make columns in
      let measure ~pb ~por =
        let config =
          Check.config_with ~preemption_bound:pb ~max_executions:cap ~por ()
        in
        let t0 = Unix.gettimeofday () in
        let r = Check.run ~config ?metrics:(bench_metrics ()) entry.Conc.Registry.adapter test in
        let wall = Unix.gettimeofday () -. t0 in
        let execs, hists, complete =
          match r.Check.phase2 with
          | Some p -> p.Check.stats.Explore.executions, p.Check.histories, p.Check.stats.Explore.complete
          | None -> 0, 0, false
        in
        r, execs, hists, complete, wall
      in
      List.iter
        (fun (label, pb) ->
          let r_off, e_off, h_off, c_off, w_off = measure ~pb ~por:false in
          let r_on, e_on, h_on, c_on, w_on = measure ~pb ~por:true in
          (* An execution-capped baseline truncates its history set; the
             comparison is only meaningful when both explorations finished. *)
          let equal =
            if not (c_off && c_on) then "cap"
            else if verdict_label r_off = verdict_label r_on && h_off = h_on then "yes"
            else "NO"
          in
          let factor = if e_on > 0 then float_of_int e_off /. float_of_int e_on else 1.0 in
          Fmt.pr "%-20s %-10s %10d %10d %7.1fx %6d %6s@." name label e_off e_on factor h_off
            equal;
          add_row ~section:"por" ~cls:name ~config:label ~wall_s:(w_off +. w_on)
            ~executions:e_off ~executions_reduced:e_on ~reduction:factor ())
        [ "pb=default", Explore.default_config.Explore.preemption_bound; "unbounded", None ])
    cases;
  Fmt.pr
    "@.The reduction must never change what is observed: 'equal' compares the verdict and \
     the distinct-history count per row (the CI equivalence lane additionally compares \
     history fingerprints).@."
