(* The --memory artifact: the Dekker/Peterson store→load litmus under
   `--memory sc/tso/pso`, fenced and fence-free. The point of the table is
   the contrast: the fence-free protocol passes an exhaustive SC
   exploration (mutual exclusion holds in every SC interleaving — the bug
   is provably invisible to an SC checker) and fails under both weak
   models, while the fully fenced variant passes everywhere. Executions
   and flush counts show what the weak search pays for that coverage.
   Rows land in the --json results file (BENCH_<sha>.json).

   Both weak configurations run at preemption bound 1 with --por, the
   same budget the test suite uses: the seeded bug needs exactly one
   preemption, and exhausting the fenced protocol at the default bound
   takes minutes (every spin iteration is a choice point). *)

open Bench_common
module Explore = Lineup_scheduler.Explore
module Memory_model = Lineup_runtime.Memory_model
module Metrics = Lineup_observe.Metrics
module Conc = Lineup_conc
open Lineup

let litmus = [ [ inv "Inc"; inv "Get" ]; [ inv "Inc" ] ]

let verdict_label (r : Check.result) =
  match r.Check.verdict with
  | Check.Pass -> "pass"
  | Check.Fail _ -> "fail"
  | Check.Cancelled -> "cancelled"

let run _opts =
  hr "Relaxed memory: the Dekker litmus under --memory sc/tso/pso (pb=1, --por)";
  Fmt.pr "%-28s %-6s %-8s %12s %10s %8s@." "Class" "model" "verdict" "executions" "flushes"
    "wall";
  Fmt.pr "%s@." (String.make 78 '-');
  let test = Test_matrix.make litmus in
  List.iter
    (fun (cls, adapter) ->
      List.iter
        (fun memory ->
          let m = Metrics.create () in
          let config =
            Check.config_with ~preemption_bound:(Some 1) ~por:true ~memory ()
          in
          let t0 = Unix.gettimeofday () in
          let r = Check.run ~config ~metrics:m adapter test in
          let wall = Unix.gettimeofday () -. t0 in
          let execs =
            match r.Check.phase2 with
            | Some p -> p.Check.stats.Explore.executions
            | None -> 0
          in
          let flushes = Metrics.get m "explore.phase2.flushes" in
          let model = Memory_model.to_string memory in
          Fmt.pr "%-28s %-6s %-8s %12d %10d %7.1fs@." cls model (verdict_label r) execs
            flushes wall;
          add_row ~section:"memory" ~cls ~config:model ~wall_s:wall ~executions:execs
            ~extras:
              [
                "verdict", Printf.sprintf "%S" (verdict_label r);
                "flushes", string_of_int flushes;
              ]
            ())
        [ Memory_model.Sc; Memory_model.Tso; Memory_model.Pso ])
    [
      "DekkerCounter", Conc.Dekker.fenced;
      "DekkerCounter (fence-free)", Conc.Dekker.fence_free;
    ];
  Fmt.pr
    "@.The fence-free rows are the litmus: pass under sc (exhaustively — the bug cannot \
     manifest), fail under tso and pso. Weak failing runs stop at the first violation, so \
     their execution counts are small.@."
