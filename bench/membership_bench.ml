(* The --section membership artifact: phase-2 membership decision time,
   generic observation witness search vs the spec-specialized layer
   (class monitors / P-compositional splitting), on the same distinct
   history set.

   The exploration is shared: each class's test is explored once and its
   distinct phase-2 histories collected, then both decision procedures are
   timed over that fixed set (with repetition calibrated so the faster side
   is still measurable). This isolates exactly what --membership changes —
   the enumeration is identical by construction, so end-to-end wall clock
   dilutes the effect with harness time. Verdict agreement is asserted
   inline on every history; rows land in the --json results file
   (BENCH_<sha>.json), where the CI bench lane requires reduction >= 10 on
   at least three collection classes. *)

open Bench_common
module History = Lineup_history.History
module Spec_check = Lineup_spec.Spec_check
module Explore = Lineup_scheduler.Explore
open Lineup

(* 3x3 tests: large enough that the generic witness search has real work
   per history (the paper's default test dimension). *)
let cases =
  [
    ( "ConcurrentQueue",
      [
        [ inv_int "Enqueue" 1; inv "TryDequeue"; inv_int "Enqueue" 2 ];
        [ inv_int "Enqueue" 3; inv "TryDequeue"; inv "TryDequeue" ];
        [ inv_int "Enqueue" 4; inv "TryDequeue"; inv_int "Enqueue" 5 ];
      ] );
    ( "ConcurrentStack",
      [
        [ inv_int "Push" 1; inv "TryPop"; inv_int "Push" 2 ];
        [ inv_int "Push" 3; inv "TryPop"; inv "TryPop" ];
        [ inv_int "Push" 4; inv "TryPop"; inv_int "Push" 5 ];
      ] );
    ( "LazyListSet",
      [
        [ inv_int "Add" 10; inv_int "Remove" 10; inv_int "Contains" 10 ];
        [ inv_int "Add" 15; inv_int "Remove" 15; inv_int "Contains" 15 ];
        [ inv_int "Add" 10; inv_int "Contains" 15; inv_int "Remove" 10 ];
      ] );
    ( "ConcurrentDictionary",
      [
        [ inv_int "TryAdd" 10; inv_int "TryRemove" 10; inv_int "TryGet" 10 ];
        [ inv_int "Set" 20; inv_int "TryUpdate" 20; inv_int "TryGet" 20 ];
        [ inv_int "TryAdd" 20; inv_int "ContainsKey" 10; inv_int "TryRemove" 20 ];
      ] );
    ( "MichaelScottQueue",
      [
        [ inv_int "Enqueue" 1; inv "TryDequeue"; inv_int "Enqueue" 2 ];
        [ inv_int "Enqueue" 3; inv "TryDequeue"; inv "TryDequeue" ];
        [ inv_int "Enqueue" 4; inv "TryDequeue"; inv_int "Enqueue" 5 ];
      ] );
  ]

let distinct_histories adapter test ~cap =
  let seen = Hashtbl.create 256 in
  let histories = ref [] in
  let config = { Explore.default_config with Explore.max_executions = Some cap } in
  let _ =
    Harness.run_phase config ~adapter ~test ~on_history:(fun r ->
        let h = r.Harness.history in
        let key = History.events h, History.is_stuck h in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          histories := h :: !histories
        end;
        `Continue)
  in
  List.rev !histories

(* accept/reject per history, generic side *)
let generic_decide obs h =
  if History.is_stuck h then Result.is_ok (Observation.linearizable_stuck obs h)
  else Option.is_some (Observation.find_witness_full obs h)

(* accept/reject per history, spec side — Unsupported falls back to the
   generic search, exactly as --membership auto does in phase 2 *)
let spec_decide packed obs h =
  match Spec_check.decide packed ~init:[] h with
  | Spec_check.Accept, _ -> true
  | Spec_check.Reject, _ | Spec_check.Reject_stuck _, _ -> false
  | Spec_check.Unsupported _, _ -> generic_decide obs h

let time_reps f reps =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    f ()
  done;
  Unix.gettimeofday () -. t0

let run opts =
  hr "Membership: generic witness search vs spec-specialized decision";
  Fmt.pr "%-22s %6s %6s %12s %12s %9s %6s@." "Class" "hist" "reps" "generic(s)" "monitor(s)"
    "speedup" "agree";
  Fmt.pr "%s@." (String.make 80 '-');
  List.iter
    (fun (name, columns) ->
      let entry = Conc.Registry.find name in
      let adapter = entry.Conc.Registry.adapter in
      let test = Test_matrix.make columns in
      match adapter.Adapter.spec with
      | None -> Fmt.pr "%-22s (no declared spec — skipped)@." name
      | Some packed -> (
        match Check.synthesize adapter test with
        | Error _ -> Fmt.pr "%-22s (phase 1 failed — skipped)@." name
        | Ok (obs, _) ->
          let histories = distinct_histories adapter test ~cap:opts.cap in
          let n = List.length histories in
          (* verdicts must agree history-by-history before any timing *)
          let agree =
            List.for_all (fun h -> generic_decide obs h = spec_decide packed obs h) histories
          in
          (* calibrate repetitions on the generic side so both measurements
             are well above timer resolution *)
          let reps =
            let t1 = time_reps (fun () -> List.iter (fun h -> ignore (generic_decide obs h)) histories) 1 in
            max 2 (min 200 (int_of_float (0.3 /. (t1 +. 1e-9))))
          in
          let t_gen =
            time_reps (fun () -> List.iter (fun h -> ignore (generic_decide obs h)) histories) reps
          in
          let t_spec =
            time_reps (fun () -> List.iter (fun h -> ignore (spec_decide packed obs h)) histories) reps
          in
          let speedup = t_gen /. (t_spec +. 1e-9) in
          Fmt.pr "%-22s %6d %6d %12.4f %12.4f %8.1fx %6s@." name n reps t_gen t_spec speedup
            (if agree then "yes" else "NO");
          add_row ~section:"membership" ~cls:name ~config:"generic" ~wall_s:t_gen
            ~executions:(n * reps) ();
          add_row ~section:"membership" ~cls:name ~config:"monitor" ~wall_s:t_spec
            ~executions:(n * reps) ~reduction:speedup ()))
    cases;
  Fmt.pr
    "@.Both sides decide the same distinct phase-2 history set (the exploration is shared); \
     'agree' asserts verdict-by-verdict equality. The CI bench lane requires speedup >= 10 \
     on at least three collection classes; the membership-equivalence lane separately pins \
     end-to-end verdict and fingerprint equality of --membership generic vs auto.@."
