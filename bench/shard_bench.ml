(* The --section shard artifact: multi-process scaling of one sharded
   sweep (`lineup shard-server --local N`).

   Unlike --section parallel (domain fan-out inside one process), this
   lane measures the process fan-out of lib/shard: the server runs phase 1
   and the frontier warm-up, then farms partition subtrees to N worker
   processes over a Unix-domain socket. The workload per run is identical
   by construction — every N explores the same partition set and the
   merged report is byte-identical to `check -j` — so wall-clock is the
   only variable, and speedup is exactly what the extra processes recover
   (bounded by the host's physical cores; a 1-core container measures
   ~1.0x plus fork/socket overhead).

   Rows land in the lineup-bench/2 JSON with per-row extras: workers,
   speedup (vs. --local 1), throughput_ops_s (phase-2 executions per
   wall-second) and partitions. *)

open Bench_common
module Monotonic = Lineup_observe.Monotonic

(* bench/main.exe and bin/lineup_cli.exe live in the same _build tree. *)
let cli_path () =
  let bench_dir = Filename.dirname Sys.executable_name in
  let cand =
    Filename.concat (Filename.dirname bench_dir) (Filename.concat "bin" "lineup_cli.exe")
  in
  if Sys.file_exists cand then Some cand else None

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

(* Pull one integer counter out of a --metrics file without a JSON
   dependency: the registry renders every counter as ["key": N]. *)
let read_metric ~path key =
  let ic = open_in path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let needle = Printf.sprintf "%S:" key in
  let nlen = String.length needle and clen = String.length content in
  let rec find i =
    if i + nlen > clen then None
    else if String.sub content i nlen = needle then
      let j = ref (i + nlen) in
      while !j < clen && content.[!j] = ' ' do incr j done;
      let k = ref !j in
      while !k < clen && content.[!k] >= '0' && content.[!k] <= '9' do incr k done;
      int_of_string_opt (String.sub content !j (!k - !j))
    else find (i + 1)
  in
  find 0

(* Run the CLI to completion with stdout/stderr discarded (the server's
   progress chatter would swamp the bench output); wall-clock only. *)
let time_cli cli args =
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0o644 in
  let t0 = Monotonic.now () in
  let pid = Unix.create_process cli (Array.of_list (cli :: args)) Unix.stdin null null in
  let _, status = Unix.waitpid [] pid in
  Unix.close null;
  Monotonic.elapsed_since t0, status

(* Two collection classes with 3-thread matrices deep enough that the
   frontier yields many partitions of real work. *)
let workloads =
  [
    ( "ConcurrentQueue",
      [ "Enqueue(200),Enqueue(400),TryDequeue"; "TryDequeue,Enqueue(600)"; "TryDequeue" ] );
    (* distinct pushed values: the stack spec identifies elements by value *)
    ( "ConcurrentStack",
      [ "Push(1),Push(2),TryPop"; "TryPop,Push(3)"; "TryPop" ] );
  ]

let run opts =
  hr "Shard scaling: multi-process frontier sharding (shard-server --local N)";
  match cli_path () with
  | None ->
    Fmt.pr
      "SKIPPED: bin/lineup_cli.exe not found next to the bench binary — build it first (dune \
       build bin/lineup_cli.exe)@."
  | Some cli ->
    Fmt.pr
      "workload: one sharded sweep per class, phase-2 cap %d per partition@.host: %d \
       recommended domain(s); speedup is bounded by physical cores@.@."
      opts.cap (Domain.recommended_domain_count ());
    List.iter
      (fun (cls, columns) ->
        Fmt.pr "%s:@." cls;
        Fmt.pr "%4s %10s %10s %14s %s@." "N" "wall (s)" "speedup" "ops/s" "partitions";
        Fmt.pr "%s@." (String.make 56 '-');
        let base = ref None in
        List.iter
          (fun n ->
            let dir = temp_dir "lineup-shard-bench" in
            let mfile = Filename.temp_file "lineup-shard-bench" ".metrics.json" in
            Fun.protect
              ~finally:(fun () ->
                rm_rf dir;
                try Sys.remove mfile with Sys_error _ -> ())
              (fun () ->
                let args =
                  [ "shard-server"; cls ] @ columns
                  @ [
                      "--dir"; dir; "--local"; string_of_int n;
                      "--max-executions"; string_of_int opts.cap;
                      "--metrics"; mfile;
                    ]
                in
                let wall_s, status = time_cli cli args in
                (match status with
                 | Unix.WEXITED (0 | 1) -> ()
                 | _ -> Fmt.pr "  (run with --local %d did not complete cleanly)@." n);
                let metric k = Option.value ~default:0 (read_metric ~path:mfile k) in
                let executions = metric "explore.phase2.executions" in
                let partitions = metric "explore.phase2.partitions" in
                let b = match !base with None -> base := Some wall_s; wall_s | Some b -> b in
                let speedup = b /. wall_s in
                let throughput = float_of_int executions /. wall_s in
                Fmt.pr "%4d %10.2f %9.2fx %14.0f %10d@." n wall_s speedup throughput
                  partitions;
                add_row ~section:"shard" ~cls ~config:(Fmt.str "local=%d" n) ~wall_s
                  ~executions
                  ~extras:
                    [
                      "workers", string_of_int n;
                      "speedup", Fmt.str "%.2f" speedup;
                      "throughput_ops_s", Fmt.str "%.0f" throughput;
                      "partitions", string_of_int partitions;
                    ]
                  ()))
          [ 1; 2; 4; 8 ];
        Fmt.pr "@.")
      workloads
