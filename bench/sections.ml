(* Sections 5.5 and 5.6 of the paper. *)

open Bench_common
module Conc = Lineup_conc
module Checkers = Lineup_checkers
module Explore = Lineup_scheduler.Explore
open Lineup

module Analyzer = Lineup.Analyzer
module Pipeline = Lineup.Pipeline

(* §5.5: relevance of generalized linearizability. The paper: "5 of the 13
   classes tested exhibited deadlocking tests and could not have been tested
   with a methodology that can not handle them". We run a blocking-heavy
   random sample per class and count (a) tests with stuck histories in
   phase 1, (b) defects caught only by the generalized check. *)
let s55 opts =
  hr "Section 5.5: relevance of generalized linearizability (stuck histories)";
  Fmt.pr "%-50s %10s %12s@." "Class" "tests" "with-stuck";
  Fmt.pr "%s@." (String.make 80 '-');
  let classes_with_stuck = ref 0 in
  let class_names : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (e : Conc.Registry.entry) ->
      if not (Hashtbl.mem class_names e.class_name) then begin
        Hashtbl.replace class_names e.class_name ();
        let rng = Random.State.make [| opts.seed |] in
        let with_stuck = ref 0 in
        let samples = max 4 (opts.samples / 2) in
        for _ = 1 to samples do
          let test =
            Test_matrix.random ~rng ~invocations:e.adapter.Adapter.universe ~rows:opts.rows
              ~cols:opts.cols ()
          in
          let r = Check.run ~config:(check_config opts) e.adapter test in
          if Observation.num_stuck r.Check.observation > 0 then incr with_stuck
        done;
        if !with_stuck > 0 then incr classes_with_stuck;
        Fmt.pr "%-50s %10d %12d@." e.class_name samples !with_stuck
      end)
    Conc.Registry.all;
  Fmt.pr "@.%d classes exhibit deadlocking (stuck) tests — the paper reports 5 of 13.@."
    !classes_with_stuck;
  (* The headline §5.5 case: the MRE blocking bug is invisible to the
     classic check. *)
  let adapter = Conc.Manual_reset_event.lost_signal in
  let test = Test_matrix.make [ [ inv "Wait" ]; [ inv "Set" ] ] in
  let generalized = Check.run ~config:(check_config opts) adapter test in
  let classic =
    Check.run ~config:{ (check_config opts) with Check.classic_only = true } adapter test
  in
  Fmt.pr
    "@.MRE lost-signal bug: generalized check = %s; classic check (Def. 1 only) = %s@.\
     (\"we would not be able to single out the bug in Figure 9 with a tool that checks \
     standard linearizability only\")@."
    (Report.summary generalized) (Report.summary classic)

(* §5.6: comparison with data-race detection and atomicity checking. Since
   the analyzer pipeline, the three checkers ride ONE exploration per entry
   (each schedule executes exactly once); the legacy three-pass path is
   re-run afterwards purely to measure the wall-clock it used to cost. *)
let s56 opts =
  hr "Section 5.6: comparison with race detection and conflict-serializability";
  Fmt.pr "%-50s %8s %14s %s@." "Class (correct versions)" "races" "ser-violations" "line-up";
  Fmt.pr "%s@." (String.make 100 '-');
  let total_races = ref 0 in
  let total_ser = ref 0 in
  let cfg = { Explore.default_config with Explore.max_executions = Some (min opts.cap 500) } in
  let single_cfg = { (check_config opts) with Check.phase2 = cfg } in
  let t_single = ref 0.0 and t_multi = ref 0.0 in
  let timed cell f =
    let t0 = Lineup_observe.Monotonic.now () in
    let r = f () in
    cell := !cell +. Lineup_observe.Monotonic.elapsed_since t0;
    r
  in
  List.iter
    (fun (e : Conc.Registry.entry) ->
      let u = Array.of_list e.adapter.Adapter.universe in
      let pick i = u.(i mod Array.length u) in
      let test = Test_matrix.make [ [ pick 0; pick 2 ]; [ pick 1; pick 3 ] ] in
      let threads = Test_matrix.num_threads test + 1 in
      (* Single pass: one exploration, all checkers attached. *)
      let r =
        timed t_single (fun () ->
            Check.run ~config:single_cfg
              ~analyzers:
                [ Checkers.Race_detector.analyzer ~threads; Checkers.Serializability.analyzer () ]
              e.adapter test)
      in
      let counter a k =
        match List.find_opt (fun x -> x.Check.a_name = a) r.Check.analyses with
        | Some x -> (try List.assoc k x.Check.a_metrics with Not_found -> 0)
        | None -> 0
      in
      let races = counter "races" "races" in
      let ser_violations = counter "serializability" "violations" in
      let ser_executions = counter "serializability" "executions" in
      (* Legacy multi-pass (one exploration per checker), timed for the
         single-pass/multi-pass ratio below. *)
      timed t_multi (fun () ->
          ignore (Checkers.Race_detector.run ~config:cfg ~adapter:e.adapter ~test ());
          ignore (Checkers.Serializability.run ~config:cfg ~adapter:e.adapter ~test ());
          ignore (Check.run ~config:single_cfg e.adapter test));
      total_races := !total_races + races;
      total_ser := !total_ser + ser_violations;
      Fmt.pr "%-50s %8d %8d/%-5d %s@." e.adapter.Adapter.name races ser_violations
        ser_executions (Report.summary r))
    Conc.Registry.correct_entries;
  Fmt.pr
    "@.Totals on correct implementations: %d race reports (benign: every subject passes \
     Line-Up), %d conflict-serializability violations — the paper's \"hundreds of warnings\" \
     that \"turned out to be false alarms\".@."
    !total_races !total_ser;
  Fmt.pr
    "@.Single-pass pipeline: %.2fs for all three checkers on one exploration; legacy \
     three-pass: %.2fs (%.1fx).@."
    !t_single !t_multi
    (if !t_single > 0.0 then !t_multi /. !t_single else 0.0);
  (* Benign race demonstration: the Beta2 queue's lock-free IsEmpty races
     with the locked writers but is linearizable — the §5.6 pattern. *)
  let benign =
    Checkers.Race_detector.run ~config:cfg ~adapter:Conc.Concurrent_queue.correct
      ~test:(Test_matrix.make [ [ inv_int "Enqueue" 200 ]; [ inv "IsEmpty"; inv "TryDequeue" ] ])
      ()
  in
  Fmt.pr "@.Benign race (queue IsEmpty vs locked writers): %d race(s) — %a; Line-Up: %s@."
    (List.length benign)
    (Fmt.list ~sep:(Fmt.any "; ") Checkers.Race_detector.pp_race)
    benign
    (Report.summary
       (Check.run ~config:(check_config opts) Conc.Concurrent_queue.correct
          (Test_matrix.make [ [ inv_int "Enqueue" 200 ]; [ inv "IsEmpty"; inv "TryDequeue" ] ])));
  (* The real bug, for contrast: the race detector does flag Counter1. *)
  let races =
    Checkers.Race_detector.run ~config:cfg ~adapter:Conc.Counters.buggy_unlocked
      ~test:(Test_matrix.make [ [ inv "Inc" ]; [ inv "Inc" ] ])
      ()
  in
  Fmt.pr "@.Counter1 (real bug): %d race(s) — %a@." (List.length races)
    (Fmt.list ~sep:(Fmt.any "; ") Checkers.Race_detector.pp_race)
    races


(* §5.7: memory-model issues — potential SC violations under store
   buffering. The paper ran a SOBER-style monitor and "did not find any
   such issues in the studied implementations". *)
let s57 opts =
  hr "Section 5.7: potential sequential-consistency violations (store buffering)";
  let cfg = { Explore.default_config with Explore.max_executions = Some (min opts.cap 300) } in
  Fmt.pr "%-50s %10s %s@." "Class (correct versions)" "executions" "SC-violation patterns";
  Fmt.pr "%s@." (String.make 80 '-');
  let total = ref 0 in
  List.iter
    (fun (e : Conc.Registry.entry) ->
      let u = Array.of_list e.adapter.Adapter.universe in
      let pick i = u.(i mod Array.length u) in
      let test = Test_matrix.make [ [ pick 0; pick 2 ]; [ pick 1; pick 3 ] ] in
      let threads = Test_matrix.num_threads test + 1 in
      (* Drive the pipeline directly: the monitor is just an analyzer
         attached to one exploration of the concurrent schedules. *)
      let rep =
        Pipeline.run cfg
          ~analyzers:[ Checkers.Tso_monitor.analyzer ~threads ]
          ~adapter:e.adapter ~test ()
      in
      let pack = List.hd rep.Pipeline.packs in
      let counter k = try List.assoc k (Analyzer.metrics pack) with Not_found -> 0 in
      let patterns = counter "patterns" in
      total := !total + patterns;
      Fmt.pr "%-50s %10d %d@." e.adapter.Adapter.name (counter "executions") patterns)
    Conc.Registry.correct_entries;
  Fmt.pr
    "@.%d patterns across the studied implementations (paper: none found) — the volatile +\n\
     interlocked discipline flushes every store-to-load window. A deliberately fence-free\n\
     Dekker implementation is flagged (see test/test_tso.ml).@."
    !total
