(* The --section monitor artifact: sustained throughput of the streaming
   monitor, the headline ops/sec number for the `lineup monitor` service
   component.

   Three direct lanes feed a generated accepting stream straight into the
   engine layer ([Lineup_monitor.Engine]), measuring the checking cost
   alone — queue and stack through the near-linear decrease-and-conquer
   engines, set through the keyed chunked feasible-state engine. A fourth
   lane times the full CLI end to end (reader domain, ingest queue, driver
   rounds) over a temp file, which adds parse and queue cost.

   Rows land in the lineup-bench/2 JSON with extras: throughput_ops_s
   (completed operations per wall-second — the CI sanity floor),
   resident_peak and windows. Streams are generated deterministically from
   the --seed option. *)

open Bench_common
module Event = H.Event
module Invocation = H.Invocation
module Mon = Lineup_monitor
module Spec = Lineup_spec.Spec
module Monitor = Lineup_spec.Monitor
module Monotonic = Lineup_observe.Monotonic

(* An accepting 2-thread producer/consumer stream over [n] operations:
   thread 0 inserts distinct values, thread 1 removes them (or draws an
   honest Fail while the bag is empty), with call/return adjacency varied
   by the PRNG so windows close at irregular quiescent points. *)
let gen_pc_stream rng ~insert ~remove ~lifo n =
  let events = ref [] in
  let emit e = events := e :: !events in
  (* the bag of inserted-not-yet-removed values; FIFO pops the oldest,
     LIFO the newest *)
  let fifo = Queue.create () in
  let stack = ref [] in
  let size = ref 0 in
  let push_bag v =
    incr size;
    if lifo then stack := v :: !stack else Queue.add v fifo
  in
  let pop_bag () =
    decr size;
    if lifo then (
      match !stack with
      | v :: rest ->
        stack := rest;
        v
      | [] -> assert false)
    else Queue.pop fifo
  in
  let next = ref 0 in
  let op = Array.make 2 0 in
  let complete tid inv resp =
    let op_index = op.(tid) in
    op.(tid) <- op_index + 1;
    emit (Event.call ~tid ~op_index inv);
    emit (Event.return ~tid ~op_index resp)
  in
  for _ = 1 to n do
    if Random.State.int rng 2 = 0 || (!size = 0 && Random.State.bool rng) then begin
      (* contiguous values: lets the Diet interval compression of the
         inserted/removed sets do its job (resident stays O(bag size)) *)
      let v = !next + 1 in
      incr next;
      complete 0 (Invocation.make ~arg:(Value.Int v) insert) Value.Unit;
      push_bag v
    end
    else if !size = 0 then complete 1 (Invocation.make remove) Value.Fail
    else complete 1 (Invocation.make remove) (Value.Int (pop_bag ()))
  done;
  List.rev !events

(* An accepting keyed set stream: serial per key by construction (each op
   completes before the next), states tracked so responses are honest. *)
let gen_set_stream rng ~keys n =
  let events = ref [] in
  let emit e = events := e :: !events in
  let present = Array.make keys false in
  let op = ref 0 in
  for _ = 1 to n do
    let k = Random.State.int rng keys in
    let op_index = !op in
    incr op;
    let name, resp =
      match Random.State.int rng 3 with
      | 0 ->
        let r = Value.Bool (not present.(k)) in
        present.(k) <- true;
        "Add", r
      | 1 ->
        let r = Value.Bool present.(k) in
        present.(k) <- false;
        "Remove", r
      | _ -> "Contains", Value.Bool present.(k)
    in
    emit (Event.call ~tid:0 ~op_index (Invocation.make ~arg:(Value.Int k) name));
    emit (Event.return ~tid:0 ~op_index resp)
  done;
  List.rev !events

let time_engine ~spec ~min_batch events =
  let engine = Mon.Engine.create ~spec ~min_batch ~max_window:1_048_576 in
  let t0 = Monotonic.now () in
  List.iter (Mon.Engine.feed engine) events;
  let verdict = Mon.Engine.finalize engine in
  let wall = Monotonic.elapsed_since t0 in
  engine, verdict, wall

let row ~cls ~config ~wall ~ops ~resident ~windows ~verdict =
  let throughput = if wall > 0. then float_of_int ops /. wall else 0. in
  Fmt.pr "  %-14s %8d ops in %6.3fs — %9.0f ops/s, resident %d, windows %d (%s)@." config
    ops wall throughput resident windows
    (match (verdict : Monitor.verdict) with
     | Monitor.Accept -> "OK"
     | Monitor.Reject -> "VIOLATION"
     | Monitor.Unsupported r -> "UNSUPPORTED: " ^ r);
  add_row ~section:"monitor" ~cls ~config ~wall_s:wall ~executions:ops
    ~extras:
      [
        "throughput_ops_s", Printf.sprintf "%.0f" throughput;
        "resident_peak", string_of_int resident;
        "windows", string_of_int windows;
      ]
    ()

let direct_lane rng ~cls ~config ~spec ~events =
  let engine, verdict, wall = time_engine ~spec ~min_batch:512 events in
  ignore rng;
  row ~cls ~config ~wall
    ~ops:(Mon.Engine.ops engine)
    ~resident:(Mon.Engine.resident engine)
    ~windows:(Mon.Engine.windows engine)
    ~verdict

(* bench/main.exe and bin/lineup_cli.exe live in the same _build tree. *)
let cli_path () =
  let bench_dir = Filename.dirname Sys.executable_name in
  let cand =
    Filename.concat (Filename.dirname bench_dir) (Filename.concat "bin" "lineup_cli.exe")
  in
  if Sys.file_exists cand then Some cand else None

let cli_lane ~cls ~config ~spec_name ~events =
  match cli_path () with
  | None -> Fmt.pr "  %-14s skipped (lineup_cli.exe not built)@." config
  | Some cli ->
    let path = Filename.temp_file "lineup_monitor_bench" ".ndjson" in
    let oc = open_out path in
    List.iter
      (fun ev ->
        output_string oc (Mon.Mevent.render ev);
        output_char oc '\n')
      events;
    close_out oc;
    let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    let t0 = Monotonic.now () in
    let pid =
      Unix.create_process cli
        [| cli; "monitor"; spec_name; path |]
        Unix.stdin null null
    in
    let _, status = Unix.waitpid [] pid in
    let wall = Monotonic.elapsed_since t0 in
    Unix.close null;
    Sys.remove path;
    let ops = List.length events / 2 in
    let verdict =
      match status with
      | Unix.WEXITED 0 -> Monitor.Accept
      | Unix.WEXITED 1 -> Monitor.Reject
      | _ -> Monitor.Unsupported "unexpected exit"
    in
    row ~cls ~config ~wall ~ops ~resident:0 ~windows:0 ~verdict

let run (opts : options) =
  hr "Streaming monitor: sustained throughput (--section monitor)";
  let n = if opts.cap >= 50_000 then 500_000 else 200_000 in
  let rng = Random.State.make [| opts.seed; 0x5eed |] in
  let queue_events =
    gen_pc_stream rng ~insert:"Enqueue" ~remove:"TryDequeue" ~lifo:false n
  in
  let stack_events = gen_pc_stream rng ~insert:"Push" ~remove:"TryPop" ~lifo:true n in
  let set_events = gen_set_stream rng ~keys:64 (n / 10) in
  let queue_spec = Spec.Packed Lineup_spec.Specs.queue in
  let stack_spec = Spec.Packed Lineup_spec.Specs.stack in
  let set_spec = Spec.Packed Lineup_spec.Specs.key_set in
  direct_lane rng ~cls:"queue" ~config:"queue-direct" ~spec:queue_spec
    ~events:queue_events;
  direct_lane rng ~cls:"stack" ~config:"stack-direct" ~spec:stack_spec
    ~events:stack_events;
  direct_lane rng ~cls:"set" ~config:"set-direct" ~spec:set_spec ~events:set_events;
  cli_lane ~cls:"queue" ~config:"queue-cli" ~spec_name:"queue" ~events:queue_events
